//! K-partition problem (KPP) \[11\].
//!
//! Partition a weighted graph's vertices into `B` balanced blocks,
//! minimizing the weight of cut edges:
//!
//! ```text
//! min  Σ_(u,v,w)∈E  w · (1 − Σ_b x_ub·x_vb)
//! s.t. Σ_b x_vb = 1        ∀ vertex v        (one block per vertex)
//!      Σ_v x_vb = V/B      ∀ block b         (balanced blocks)
//! ```
//!
//! Both constraint families are in *summation format* — which is exactly
//! why the cyclic-Hamiltonian baseline does comparatively well on KPP in
//! the paper (§V-B) — but they **share variables**, which the cyclic
//! encoding cannot express jointly; Choco-Q can.

use crate::gcp::random_connected_edges;
use choco_mathkit::SplitMix64;
use choco_model::{Problem, ProblemError};

/// Variable layout: `x_vb` at `v·n_blocks + b`; no slack variables.
#[derive(Clone, Debug, PartialEq)]
pub struct KppLayout {
    /// Number of vertices `V`.
    pub n_vertices: usize,
    /// Number of blocks `B`.
    pub n_blocks: usize,
    /// Weighted edges `(u, v, w)`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl KppLayout {
    /// Index of the vertex-block variable `x_vb`.
    pub fn x(&self, v: usize, b: usize) -> usize {
        debug_assert!(v < self.n_vertices && b < self.n_blocks);
        v * self.n_blocks + b
    }

    /// Total number of binary variables.
    pub fn n_vars(&self) -> usize {
        self.n_vertices * self.n_blocks
    }

    /// Decodes the block of vertex `v`.
    pub fn block_of(&self, bits: u64, v: usize) -> Option<usize> {
        (0..self.n_blocks).find(|&b| (bits >> self.x(v, b)) & 1 == 1)
    }

    /// The cut weight of an assignment (for test oracles).
    pub fn cut_weight(&self, bits: u64) -> f64 {
        self.edges
            .iter()
            .map(|&(u, v, w)| {
                let same = (0..self.n_blocks)
                    .any(|b| (bits >> self.x(u, b)) & 1 == 1 && (bits >> self.x(v, b)) & 1 == 1);
                if same {
                    0.0
                } else {
                    w
                }
            })
            .sum()
    }
}

/// Generates a KPP instance on an explicit weighted edge list.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics on out-of-range edges, self-loops, or (when `balanced`) a vertex
/// count not divisible by the block count.
pub fn kpp(
    n_vertices: usize,
    edges: &[(usize, usize, f64)],
    n_blocks: usize,
    balanced: bool,
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(n_vertices >= 2 && n_blocks >= 2, "degenerate KPP shape");
    if balanced {
        assert_eq!(
            n_vertices % n_blocks,
            0,
            "balanced partition needs V divisible by B"
        );
    }
    for &(u, v, _) in edges {
        assert!(u < n_vertices && v < n_vertices, "edge out of range");
        assert_ne!(u, v, "self-loop");
    }
    let layout = KppLayout {
        n_vertices,
        n_blocks,
        edges: edges.to_vec(),
    };
    let mut b = Problem::builder(layout.n_vars()).minimize().name(format!(
        "KPP {n_vertices}V-{}E-{n_blocks}B seed={seed}",
        edges.len()
    ));
    // Objective: Σ w − Σ w·x_ub·x_vb (uncut edges subtract their weight).
    for &(u, v, w) in edges {
        b = b.constant(w);
        for blk in 0..n_blocks {
            b = b.quadratic(layout.x(u, blk), layout.x(v, blk), -w);
        }
    }
    for v in 0..n_vertices {
        b = b.equality((0..n_blocks).map(|blk| (layout.x(v, blk), 1i64)), 1);
    }
    if balanced {
        let per_block = (n_vertices / n_blocks) as i64;
        for blk in 0..n_blocks {
            b = b.equality((0..n_vertices).map(|v| (layout.x(v, blk), 1i64)), per_block);
        }
    }
    b.build()
}

/// Generates a KPP instance on a random connected graph with integer edge
/// weights in `[1, 4]`.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
pub fn kpp_random(
    n_vertices: usize,
    n_edges: usize,
    n_blocks: usize,
    balanced: bool,
    seed: u64,
) -> Result<Problem, ProblemError> {
    let mut rng = SplitMix64::new(seed ^ 0x4B99);
    let edges: Vec<(usize, usize, f64)> = random_connected_edges(n_vertices, n_edges, seed)
        .into_iter()
        .map(|(u, v)| (u, v, rng.gen_range(1, 5) as f64))
        .collect();
    kpp(n_vertices, &edges, n_blocks, balanced, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    fn k1_edges() -> Vec<(usize, usize, f64)> {
        // The paper's K1 = 4V-3E-2B shape: a path with one chord.
        vec![(0, 1, 2.0), (1, 2, 1.0), (2, 3, 3.0)]
    }

    #[test]
    fn k1_matches_paper_shape() {
        let p = kpp(4, &k1_edges(), 2, true, 1).unwrap();
        assert_eq!(p.n_vars(), 8);
        assert_eq!(p.constraints().len(), 6); // 4 vertex + 2 balance
                                              // All constraints are in summation format (the property the paper
                                              // credits for cyclic's relatively good KPP numbers).
        assert!(p
            .constraints()
            .eqs()
            .iter()
            .all(|eq| eq.is_summation_format()));
    }

    #[test]
    fn objective_equals_cut_weight_on_feasible_points() {
        let edges = k1_edges();
        let p = kpp(4, &edges, 2, true, 1).unwrap();
        let layout = KppLayout {
            n_vertices: 4,
            n_blocks: 2,
            edges,
        };
        for bits in p.feasible_solutions(10_000) {
            let f = p.evaluate(bits);
            let cut = layout.cut_weight(bits);
            assert!((f - cut).abs() < 1e-9, "bits={bits:b}: {f} vs {cut}");
        }
    }

    #[test]
    fn balanced_blocks_have_equal_size() {
        let p = kpp(4, &k1_edges(), 2, true, 1).unwrap();
        let layout = KppLayout {
            n_vertices: 4,
            n_blocks: 2,
            edges: k1_edges(),
        };
        for bits in p.feasible_solutions(10_000) {
            let mut sizes = vec![0usize; 2];
            for v in 0..4 {
                sizes[layout.block_of(bits, v).unwrap()] += 1;
            }
            assert_eq!(sizes, vec![2, 2]);
        }
    }

    #[test]
    fn unbalanced_variant_relaxes_size() {
        let p = kpp(4, &k1_edges(), 2, false, 1).unwrap();
        assert_eq!(p.constraints().len(), 4);
        // Putting everything in block 0 is now feasible.
        let layout = KppLayout {
            n_vertices: 4,
            n_blocks: 2,
            edges: k1_edges(),
        };
        let mut bits = 0u64;
        for v in 0..4 {
            bits |= 1 << layout.x(v, 0);
        }
        assert!(p.is_feasible(bits));
        assert_eq!(p.evaluate(bits), 0.0, "no edges cut");
    }

    #[test]
    fn optimum_cuts_cheapest_edge_on_path() {
        // Path 0-1-2-3 with weights 2,1,3 split into two balanced halves:
        // the best split is {0,1},{2,3} cutting only the middle edge (1).
        let p = kpp(4, &k1_edges(), 2, true, 1).unwrap();
        let opt = solve_exact(&p).unwrap();
        assert_eq!(opt.value, 1.0);
    }

    #[test]
    fn random_generator_shapes() {
        let p = kpp_random(6, 7, 2, true, 3).unwrap();
        assert_eq!(p.n_vars(), 12);
        assert_eq!(p.constraints().len(), 8);
        assert!(solve_exact(&p).is_ok());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn balanced_requires_divisibility() {
        let _ = kpp(5, &[(0, 1, 1.0)], 2, true, 1);
    }
}
