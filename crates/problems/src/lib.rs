//! # choco-problems
//!
//! The three application benchmarks the Choco-Q paper evaluates on
//! (§V-A): facility location ([`flp`]), graph coloring ([`gcp`]), and
//! k-partition ([`kpp`]), plus the 12-class [`BenchmarkSuite`]
//! (F1–F4, G1–G4, K1–K4) used by every table and figure.
//!
//! Beyond the paper's three domains, two additional constrained families
//! widen the workload axis: exact cover / set partitioning ([`cover`] —
//! pure all-ones equalities, classes X1–X4) and bounded knapsack with an
//! equality budget ([`knapsack`] — one general-coefficient equality row,
//! classes B1–B4). [`EXTENDED_CLASSES`] and [`BenchmarkSuite::extended`]
//! enumerate all 20 classes.
//!
//! A third tier keeps inequalities *native*: knapsack with a first-class
//! `≤` budget row ([`knapsack_native`], classes B1n–B4n), multi-dimensional
//! knapsack ([`mdknap`], M1–M2), and assignment with agent capacities
//! ([`assigncap`], A1–A2 — mixed `=`/`≤` rows). These carry no slack
//! variables in the problem definition; the commute-driver layer
//! synthesizes bounded slack registers internally. [`NATIVE_CLASSES`] and
//! [`BenchmarkSuite::native`] enumerate all 8 native classes.
//!
//! All generators are deterministic per seed; in the paper-faithful
//! families, inequality constraints are encoded as equalities with binary
//! slack variables, matching the paper's formulation (Eq. (1)).
//!
//! ```
//! use choco_problems::{flp, FlpLayout};
//!
//! // The paper's F1 class: 2 facilities, 1 demand → 6 vars, 3 constraints.
//! let p = flp(2, 1, 7)?;
//! assert_eq!(p.n_vars(), 6);
//! assert_eq!(p.constraints().len(), 3);
//! # Ok::<(), choco_model::ProblemError>(())
//! ```

#![warn(missing_docs)]

mod assigncap;
mod cover;
mod flp;
mod gcp;
mod knapsack;
mod kpp;
mod mdknap;
mod suite;

pub use assigncap::{assigncap, assigncap_random, AssignCapLayout};
pub use cover::{cover, cover_random, CoverLayout};
pub use flp::{flp, FlpLayout};
pub use gcp::{gcp, gcp_random, random_connected_edges, GcpLayout};
pub use knapsack::{
    knapsack, knapsack_native, knapsack_random, knapsack_random_with, KnapsackEncoding,
    KnapsackLayout,
};
pub use kpp::{kpp, kpp_random, KppLayout};
pub use mdknap::{mdknap, mdknap_random, MdKnapLayout};
pub use suite::{
    domain_of, instance, instances, scale_label, BenchmarkCase, BenchmarkSuite, Domain,
    ALL_CLASSES, EXTENDED_CLASSES, NATIVE_CLASSES, SMALL_CLASSES,
};
