//! Assignment with agent capacities (ASSIGN), mixed-row encoding.
//!
//! Assign every task to exactly one agent, minimizing total cost, while
//! no agent's summed task load exceeds its capacity:
//!
//! ```text
//! min  Σ_{a,t} cost_{a,t} · x_{a,t}
//! s.t. Σ_a x_{a,t} = 1                       ∀ task t      (equality)
//! s.t. Σ_t load_{a,t} · x_{a,t} ≤ cap_a      ∀ agent a     (inequality)
//! ```
//!
//! This is the suite's *mixed* linear-system workload: the per-task
//! covering rows are pure summation equalities (the shape the cyclic
//! baseline can encode) while the per-agent capacity rows are native `≤`
//! constraints with general integer loads. The commute-driver layer
//! therefore combines a plain equality kernel with internally synthesized
//! slack registers in one driver — exercising the generalized synthesis
//! path on equalities and inequalities simultaneously.

use choco_mathkit::SplitMix64;
use choco_model::{Problem, ProblemError};

/// Variable layout of a generated assignment instance: binary variable
/// `x_{a,t}` ("agent `a` does task `t`") at index `a * n_tasks + t`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssignCapLayout {
    /// `loads[a][t]` is task `t`'s load on agent `a`.
    pub loads: Vec<Vec<u64>>,
    /// Per-agent capacity `cap_a`.
    pub capacities: Vec<u64>,
}

impl AssignCapLayout {
    /// Number of agents.
    pub fn n_agents(&self) -> usize {
        self.loads.len()
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.loads[0].len()
    }

    /// Index of the variable `x_{a,t}`.
    pub fn x(&self, a: usize, t: usize) -> usize {
        debug_assert!(a < self.n_agents() && t < self.n_tasks());
        a * self.n_tasks() + t
    }

    /// Total number of binary variables.
    pub fn n_vars(&self) -> usize {
        self.n_agents() * self.n_tasks()
    }

    /// Agent `a`'s summed load under `bits` (test oracle).
    pub fn load_of(&self, bits: u64, a: usize) -> u64 {
        (0..self.n_tasks())
            .filter(|&t| (bits >> self.x(a, t)) & 1 == 1)
            .map(|t| self.loads[a][t])
            .sum()
    }

    /// `true` when `bits` assigns every task exactly once within every
    /// agent's capacity (test oracle).
    pub fn is_valid(&self, bits: u64) -> bool {
        let covered = (0..self.n_tasks()).all(|t| {
            (0..self.n_agents())
                .filter(|&a| (bits >> self.x(a, t)) & 1 == 1)
                .count()
                == 1
        });
        covered && (0..self.n_agents()).all(|a| self.load_of(bits, a) <= self.capacities[a])
    }
}

/// Generates an assignment-with-capacity instance from explicit data.
///
/// Assignment costs are drawn uniformly from `[1, 6)` per `(agent, task)`
/// pair off `seed`.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics on empty agents/tasks, zero loads or capacities, or ragged
/// load rows.
pub fn assigncap(
    loads: &[Vec<u64>],
    capacities: &[u64],
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(!loads.is_empty(), "no agents");
    assert_eq!(loads.len(), capacities.len(), "loads/capacities mismatch");
    let n_tasks = loads[0].len();
    assert!(n_tasks > 0, "no tasks");
    for row in loads {
        assert_eq!(row.len(), n_tasks, "ragged load row");
        assert!(row.iter().all(|&l| l > 0), "zero-load task");
    }
    assert!(capacities.iter().all(|&c| c > 0), "zero capacity");
    let layout = AssignCapLayout {
        loads: loads.to_vec(),
        capacities: capacities.to_vec(),
    };
    let mut rng = SplitMix64::new(seed ^ 0x51_6E_C5);
    let mut b = Problem::builder(layout.n_vars()).minimize().name(format!(
        "ASSIGN {}A-{}T seed={seed}",
        layout.n_agents(),
        n_tasks
    ));
    for a in 0..layout.n_agents() {
        for t in 0..n_tasks {
            b = b.linear(layout.x(a, t), rng.gen_range_f64(1.0, 6.0).round());
        }
    }
    for t in 0..n_tasks {
        b = b.equality((0..layout.n_agents()).map(|a| (layout.x(a, t), 1)), 1);
    }
    for a in 0..layout.n_agents() {
        b = b.less_equal(
            (0..n_tasks).map(|t| (layout.x(a, t), loads[a][t] as i64)),
            capacities[a] as i64,
        );
    }
    b.build()
}

/// Generates a random feasible assignment-with-capacity instance.
///
/// Loads are drawn uniformly from `[1, 4)` per `(agent, task)` pair;
/// every agent's capacity is `⌈n_tasks / n_agents⌉ · 3`, so any balanced
/// round-robin assignment fits (the instance is feasible by construction)
/// while skewed assignments can overload an agent.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics when `n_agents == 0` or `n_tasks == 0`.
pub fn assigncap_random(
    n_agents: usize,
    n_tasks: usize,
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(n_agents >= 1 && n_tasks >= 1, "degenerate assignment shape");
    let mut rng = SplitMix64::new(seed ^ 0x51_6E_C5);
    let loads: Vec<Vec<u64>> = (0..n_agents)
        .map(|_| (0..n_tasks).map(|_| rng.gen_range(1, 4)).collect())
        .collect();
    let cap = (n_tasks.div_ceil(n_agents) as u64) * 3;
    let capacities = vec![cap; n_agents];
    assigncap(&loads, &capacities, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    fn regen_layout(n_agents: usize, n_tasks: usize, seed: u64) -> AssignCapLayout {
        let mut rng = SplitMix64::new(seed ^ 0x51_6E_C5);
        let loads: Vec<Vec<u64>> = (0..n_agents)
            .map(|_| (0..n_tasks).map(|_| rng.gen_range(1, 4)).collect())
            .collect();
        let cap = (n_tasks.div_ceil(n_agents) as u64) * 3;
        AssignCapLayout {
            loads,
            capacities: vec![cap; n_agents],
        }
    }

    #[test]
    fn explicit_instance_matches_shape() {
        // 2 agents × 2 tasks; agent 0 can hold at most one task.
        let p = assigncap(&[vec![2, 2], vec![1, 1]], &[3, 2], 1).unwrap();
        assert_eq!(p.n_vars(), 4);
        assert_eq!(p.constraints().eqs().len(), 2);
        assert_eq!(p.constraints().ineqs().len(), 2);
        let l = AssignCapLayout {
            loads: vec![vec![2, 2], vec![1, 1]],
            capacities: vec![3, 2],
        };
        let opt = solve_exact(&p).unwrap();
        for &sol in &opt.solutions {
            assert!(l.is_valid(sol), "sol {sol:b}");
        }
        // Giving agent 0 both tasks (load 4 > 3) must be infeasible.
        let both_to_a0 = (1 << l.x(0, 0)) | (1 << l.x(0, 1));
        assert!(!p.is_feasible(both_to_a0));
        // Giving agent 1 both tasks (load 2 ≤ 2) is feasible.
        let both_to_a1 = (1 << l.x(1, 0)) | (1 << l.x(1, 1));
        assert!(p.is_feasible(both_to_a1));
    }

    #[test]
    fn random_instances_are_feasible_by_construction() {
        for seed in 0..12 {
            let p = assigncap_random(2, 3, seed).unwrap();
            assert!(p.first_feasible().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn feasibility_oracle_agrees_with_layout() {
        for seed in 0..4 {
            let p = assigncap_random(2, 2, seed).unwrap();
            let l = regen_layout(2, 2, seed);
            for bits in 0u64..(1 << 4) {
                assert_eq!(
                    p.is_feasible(bits),
                    l.is_valid(bits),
                    "seed {seed} bits {bits:b}"
                );
            }
        }
    }

    #[test]
    fn exact_optimum_is_a_valid_capped_assignment() {
        for seed in 0..6 {
            let p = assigncap_random(2, 3, seed).unwrap();
            let l = regen_layout(2, 3, seed);
            let opt = solve_exact(&p).unwrap();
            for &sol in &opt.solutions {
                assert!(l.is_valid(sol), "seed {seed} sol {sol:b}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = assigncap_random(2, 3, 4).unwrap();
        let b = assigncap_random(2, 3, 4).unwrap();
        let c = assigncap_random(2, 3, 5).unwrap();
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_ne!(format!("{a}"), format!("{c}"));
    }
}
