//! Graph coloring problem (GCP) \[26\].
//!
//! Assignment-cost coloring with `V` vertices, `K` colors and edge conflict
//! constraints:
//!
//! ```text
//! min  Σ_vc cost_vc · x_vc
//! s.t. Σ_c x_vc = 1                 ∀ vertex v     (one color per vertex)
//!      x_uc + x_vc ≤ 1              ∀ (u,v) ∈ E, c (no conflict per color)
//! ```
//!
//! Conflict inequalities become equalities with one slack per (edge, color):
//! `x_uc + x_vc + s_ec = 1`. **G1 = 3V-1E with 3 colors** needs
//! `3·3 + 1·3 = 12` qubits — the count quoted in §V-C for the G1 hardware
//! runs.

use choco_mathkit::SplitMix64;
use choco_model::{Problem, ProblemError};

/// Variable layout of a generated GCP instance.
///
/// * `x_vc` at `v·n_colors + c`
/// * `s_ec` at `n_vertices·n_colors + e·n_colors + c`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcpLayout {
    /// Number of vertices `V`.
    pub n_vertices: usize,
    /// Number of colors `K`.
    pub n_colors: usize,
    /// The edge list.
    pub edges: Vec<(usize, usize)>,
}

impl GcpLayout {
    /// Index of the vertex-color variable `x_vc`.
    pub fn x(&self, v: usize, c: usize) -> usize {
        debug_assert!(v < self.n_vertices && c < self.n_colors);
        v * self.n_colors + c
    }

    /// Index of the slack variable for edge `e`, color `c`.
    pub fn s(&self, e: usize, c: usize) -> usize {
        debug_assert!(e < self.edges.len() && c < self.n_colors);
        self.n_vertices * self.n_colors + e * self.n_colors + c
    }

    /// Total number of binary variables.
    pub fn n_vars(&self) -> usize {
        (self.n_vertices + self.edges.len()) * self.n_colors
    }

    /// Decodes the color of vertex `v` in a feasible assignment.
    pub fn color_of(&self, bits: u64, v: usize) -> Option<usize> {
        (0..self.n_colors).find(|&c| (bits >> self.x(v, c)) & 1 == 1)
    }
}

/// Generates a seeded GCP instance on an explicit edge list.
///
/// Per-(vertex, color) costs are drawn uniformly from `[1, 5)`.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics if an edge references a vertex `>= n_vertices` or is a self-loop.
pub fn gcp(
    n_vertices: usize,
    edges: &[(usize, usize)],
    n_colors: usize,
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(n_vertices >= 1 && n_colors >= 2, "degenerate GCP shape");
    for &(u, v) in edges {
        assert!(u < n_vertices && v < n_vertices, "edge out of range");
        assert_ne!(u, v, "self-loop");
    }
    let layout = GcpLayout {
        n_vertices,
        n_colors,
        edges: edges.to_vec(),
    };
    let mut rng = SplitMix64::new(seed ^ 0x6C0_1012);
    let mut b = Problem::builder(layout.n_vars()).minimize().name(format!(
        "GCP {n_vertices}V-{}E-{n_colors}C seed={seed}",
        edges.len()
    ));
    for v in 0..n_vertices {
        for c in 0..n_colors {
            b = b.linear(layout.x(v, c), rng.gen_range_f64(1.0, 5.0).round());
        }
    }
    // One color per vertex (summation format).
    for v in 0..n_vertices {
        b = b.equality((0..n_colors).map(|c| (layout.x(v, c), 1i64)), 1);
    }
    // Edge conflicts with slack: x_uc + x_vc + s_ec = 1.
    for (e, &(u, v)) in edges.iter().enumerate() {
        for c in 0..n_colors {
            b = b.equality(
                [
                    (layout.x(u, c), 1i64),
                    (layout.x(v, c), 1),
                    (layout.s(e, c), 1),
                ],
                1,
            );
        }
    }
    b.build()
}

/// Generates a GCP instance on a random connected graph with `n_edges`
/// edges (spanning-tree backbone + random extras).
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics if `n_edges` is less than `n_vertices - 1` (cannot be connected)
/// or exceeds the simple-graph maximum.
pub fn gcp_random(
    n_vertices: usize,
    n_edges: usize,
    n_colors: usize,
    seed: u64,
) -> Result<Problem, ProblemError> {
    let edges = random_connected_edges(n_vertices, n_edges, seed);
    gcp(n_vertices, &edges, n_colors, seed)
}

/// Random simple edge list, deterministic per seed: a shuffled
/// spanning-tree backbone (truncated when `n_edges < V−1`, giving a forest
/// — e.g. the paper's G1 = 3V-1E) plus random extra edges. Shared by the
/// GCP and KPP generators.
pub fn random_connected_edges(n_vertices: usize, n_edges: usize, seed: u64) -> Vec<(usize, usize)> {
    let max_edges = n_vertices * (n_vertices - 1) / 2;
    assert!(n_edges <= max_edges, "too many edges for a simple graph");
    let mut rng = SplitMix64::new(seed ^ 0xED6E);
    let mut order: Vec<usize> = (0..n_vertices).collect();
    rng.shuffle(&mut order);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n_edges);
    let norm = |u: usize, v: usize| if u < v { (u, v) } else { (v, u) };
    // Spanning-tree backbone: attach each vertex to a random earlier one.
    for k in 1..n_vertices {
        if edges.len() == n_edges {
            break;
        }
        let parent = order[rng.gen_range(0, k as u64) as usize];
        edges.push(norm(order[k], parent));
    }
    while edges.len() < n_edges {
        let u = rng.gen_range(0, n_vertices as u64) as usize;
        let v = rng.gen_range(0, n_vertices as u64) as usize;
        if u == v {
            continue;
        }
        let e = norm(u, v);
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    #[test]
    fn g1_matches_paper_qubit_count() {
        // G1 = 3V-1E with 3 colors → 12 qubits (§V-C).
        let p = gcp(3, &[(0, 1)], 3, 5).unwrap();
        assert_eq!(p.n_vars(), 12);
        assert_eq!(p.constraints().len(), 6);
    }

    #[test]
    fn triangle_with_three_colors_has_12_constraints() {
        // The design doc's G3 = 3V-3E-3C: 12 constraints, as the paper
        // quotes for its G3 case.
        let p = gcp(3, &[(0, 1), (1, 2), (0, 2)], 3, 1).unwrap();
        assert_eq!(p.constraints().len(), 12);
        assert_eq!(p.n_vars(), 18);
    }

    #[test]
    fn feasible_assignments_are_proper_colorings() {
        let edges = [(0, 1), (1, 2)];
        let p = gcp(3, &edges, 2, 11).unwrap();
        let layout = GcpLayout {
            n_vertices: 3,
            n_colors: 2,
            edges: edges.to_vec(),
        };
        let feasible = p.feasible_solutions(100_000);
        assert!(!feasible.is_empty());
        for bits in feasible {
            let colors: Vec<usize> = (0..3)
                .map(|v| layout.color_of(bits, v).expect("exactly one color"))
                .collect();
            for &(u, v) in &edges {
                assert_ne!(colors[u], colors[v], "conflicting edge ({u},{v})");
            }
        }
    }

    #[test]
    fn triangle_with_two_colors_is_infeasible() {
        let p = gcp(3, &[(0, 1), (1, 2), (0, 2)], 2, 3).unwrap();
        assert!(p.first_feasible().is_none());
    }

    #[test]
    fn optimum_exists_and_is_proper() {
        let p = gcp_random(4, 4, 3, 17).unwrap();
        let opt = solve_exact(&p).unwrap();
        assert!(!opt.solutions.is_empty());
        assert!(p.is_feasible(opt.solutions[0]));
    }

    #[test]
    fn random_edges_connected_and_simple() {
        for seed in 0..5 {
            let edges = random_connected_edges(6, 8, seed);
            assert_eq!(edges.len(), 8);
            // simple
            let set: std::collections::BTreeSet<_> = edges.iter().collect();
            assert_eq!(set.len(), 8);
            // connected: BFS
            let mut seen = [false; 6];
            let mut queue = vec![0usize];
            seen[0] = true;
            while let Some(u) = queue.pop() {
                for &(a, b) in &edges {
                    let other = if a == u {
                        Some(b)
                    } else if b == u {
                        Some(a)
                    } else {
                        None
                    };
                    if let Some(v) = other {
                        if !seen[v] {
                            seen[v] = true;
                            queue.push(v);
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "seed {seed} not connected");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gcp_random(4, 4, 3, 2).unwrap();
        let b = gcp_random(4, 4, 3, 2).unwrap();
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}
