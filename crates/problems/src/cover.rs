//! Exact cover / set partitioning (SPP).
//!
//! Choose a sub-collection of subsets that covers every universe element
//! exactly once, at minimum total cost:
//!
//! ```text
//! min  Σ_j cost_j · x_j
//! s.t. Σ_{j : e ∈ S_j} x_j = 1     ∀ element e
//! ```
//!
//! Every constraint is a pure all-ones equality (summation format) with no
//! slack variables — the structure the commute driver handles most directly,
//! and also the one shape the cyclic baseline can encode, which makes SPP
//! the sharpest head-to-head workload in the extended suite.
//!
//! Generated instances are feasible *by construction*: the generator first
//! partitions the universe into disjoint subsets (selecting exactly those
//! is an exact cover), then adds random decoy subsets and shuffles.

use choco_mathkit::SplitMix64;
use choco_model::{Problem, ProblemError};

/// Variable layout of a generated exact-cover instance: one binary
/// variable per subset, `x_j` at index `j`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverLayout {
    /// Number of universe elements `|U|`.
    pub n_elements: usize,
    /// The subsets, each a sorted list of element indices.
    pub subsets: Vec<Vec<usize>>,
}

impl CoverLayout {
    /// Total number of binary variables (one per subset).
    pub fn n_vars(&self) -> usize {
        self.subsets.len()
    }

    /// How many selected subsets cover element `e` under `bits`.
    pub fn cover_count(&self, bits: u64, e: usize) -> usize {
        self.subsets
            .iter()
            .enumerate()
            .filter(|(j, s)| (bits >> j) & 1 == 1 && s.contains(&e))
            .count()
    }

    /// `true` when `bits` selects an exact cover (test oracle).
    pub fn is_exact_cover(&self, bits: u64) -> bool {
        (0..self.n_elements).all(|e| self.cover_count(bits, e) == 1)
    }
}

/// Generates an exact-cover instance from an explicit subset collection.
///
/// Subset costs are drawn uniformly from `[1, 6)` per subset, mildly
/// scaled by subset size so bigger subsets are not uniformly better.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics on an empty collection, an empty subset, an out-of-range
/// element, or an element no subset covers (such instances are trivially
/// infeasible, which the generators never produce).
pub fn cover(
    n_elements: usize,
    subsets: &[Vec<usize>],
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(
        n_elements >= 1 && !subsets.is_empty(),
        "degenerate cover shape"
    );
    let mut covered = vec![false; n_elements];
    for s in subsets {
        assert!(!s.is_empty(), "empty subset");
        for &e in s {
            assert!(e < n_elements, "element out of range");
            covered[e] = true;
        }
    }
    assert!(
        covered.iter().all(|&c| c),
        "some element is covered by no subset"
    );
    let layout = CoverLayout {
        n_elements,
        subsets: subsets.to_vec(),
    };
    let mut rng = SplitMix64::new(seed ^ 0xC0_7E12);
    let mut b = Problem::builder(layout.n_vars()).minimize().name(format!(
        "COVER {n_elements}U-{}S seed={seed}",
        subsets.len()
    ));
    for (j, s) in subsets.iter().enumerate() {
        let base = rng.gen_range_f64(1.0, 6.0).round();
        b = b.linear(j, base + s.len() as f64);
    }
    for e in 0..n_elements {
        b = b.equality(
            subsets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contains(&e))
                .map(|(j, _)| (j, 1i64)),
            1,
        );
    }
    b.build()
}

/// Generates a seeded random exact-cover instance with `n_subsets` subsets
/// over `n_elements` elements, feasible by construction.
///
/// The first subsets form a random partition of the universe (so selecting
/// exactly those is a feasible exact cover); the rest are random decoys;
/// the collection is then shuffled so the planted cover sits at no fixed
/// indices.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics when `n_subsets < 2` or `n_elements < 2` (no meaningful
/// partition exists).
pub fn cover_random(
    n_elements: usize,
    n_subsets: usize,
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(n_elements >= 2 && n_subsets >= 2, "degenerate cover shape");
    let mut rng = SplitMix64::new(seed ^ 0x5E7_C0FE);
    // Planted partition into `blocks` nonempty groups.
    let blocks = (n_elements / 2).clamp(2, n_subsets).min(n_elements);
    let mut elements: Vec<usize> = (0..n_elements).collect();
    rng.shuffle(&mut elements);
    let mut subsets: Vec<Vec<usize>> = vec![Vec::new(); blocks];
    // One element per block first (nonempty), then the rest at random.
    for (blk, &e) in subsets.iter_mut().zip(elements.iter()) {
        blk.push(e);
    }
    for &e in elements.iter().skip(blocks) {
        let blk = rng.gen_range(0, blocks as u64) as usize;
        subsets[blk].push(e);
    }
    // Decoy subsets: random nonempty subsets of the universe.
    while subsets.len() < n_subsets {
        let size = rng.gen_range(1, (n_elements as u64 / 2).max(2) + 1) as usize;
        let mut pool: Vec<usize> = (0..n_elements).collect();
        rng.shuffle(&mut pool);
        subsets.push(pool.into_iter().take(size).collect());
    }
    for s in subsets.iter_mut() {
        s.sort_unstable();
    }
    rng.shuffle(&mut subsets);
    cover(n_elements, &subsets, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    #[test]
    fn explicit_instance_matches_shape() {
        // 4 elements, 3 subsets; {0,1} + {2,3} is the unique exact cover.
        let subsets = vec![vec![0, 1], vec![2, 3], vec![1, 2]];
        let p = cover(4, &subsets, 1).unwrap();
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.constraints().len(), 4);
        assert!(p.is_feasible(0b011));
        assert!(!p.is_feasible(0b101)); // element 1 covered twice
        assert!(!p.is_feasible(0b000)); // nothing covered
    }

    #[test]
    fn all_constraints_are_summation_format() {
        let p = cover_random(6, 10, 3).unwrap();
        assert!(p
            .constraints()
            .eqs()
            .iter()
            .all(|eq| eq.is_summation_format()));
    }

    #[test]
    fn random_instances_are_feasible_by_construction() {
        for seed in 0..20 {
            let p = cover_random(8, 12, seed).unwrap();
            assert!(p.first_feasible().is_some(), "seed {seed} infeasible");
            assert_eq!(p.n_vars(), 12);
            assert_eq!(p.constraints().len(), 8);
        }
    }

    #[test]
    fn feasible_points_are_exact_covers() {
        let subsets = vec![vec![0, 1], vec![2], vec![3], vec![2, 3], vec![0, 3]];
        let p = cover(4, &subsets, 5).unwrap();
        let layout = CoverLayout {
            n_elements: 4,
            subsets,
        };
        let feasible = p.feasible_solutions(10_000);
        assert!(!feasible.is_empty());
        for bits in feasible {
            assert!(layout.is_exact_cover(bits), "bits={bits:b}");
        }
    }

    #[test]
    fn optimum_exists_and_is_positive() {
        let p = cover_random(6, 9, 7).unwrap();
        let opt = solve_exact(&p).unwrap();
        assert!(opt.value > 0.0);
        assert!(!opt.solutions.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = cover_random(6, 10, 9).unwrap();
        let b = cover_random(6, 10, 9).unwrap();
        let c = cover_random(6, 10, 10).unwrap();
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_ne!(format!("{a}"), format!("{c}"));
    }

    #[test]
    #[should_panic(expected = "covered by no subset")]
    fn uncoverable_element_panics() {
        let _ = cover(3, &[vec![0, 1]], 1);
    }
}
