//! Bounded knapsack with an equality budget (KNAP).
//!
//! Select items maximizing value subject to a capacity budget. Two
//! encodings of the same seeded instance are offered
//! ([`KnapsackEncoding`]):
//!
//! * **Slack** — the paper's Eq. (1) formulation: the capacity inequality
//!   is rewritten as an *exact* budget equation with hand-rolled binary
//!   slack bits in the problem definition:
//!
//!   ```text
//!   max  Σ_i value_i · x_i
//!   s.t. Σ_i weight_i · x_i + Σ_j 2^j · s_j = W
//!   ```
//!
//!   The slack register `s` holds the unused budget in binary; with
//!   `k = ⌈log₂(W+1)⌉` bits every residual `0..=W` is representable, so
//!   *every* item selection of weight at most `W` extends to a feasible
//!   assignment (and `x = 0` always does).
//!
//! * **Native** — the capacity row stays a first-class `≤` constraint
//!   over the item variables only:
//!
//!   ```text
//!   max  Σ_i value_i · x_i
//!   s.t. Σ_i weight_i · x_i ≤ W
//!   ```
//!
//!   No slack variable appears in the problem; the commute-driver layer
//!   synthesizes a bounded slack register internally and keeps the
//!   evolution on the `Σ w_i x_i + s = W` manifold. Same feasible item
//!   selections, same optimum, fewer *problem* variables.
//!
//! Unlike FLP/GCP/KPP, the budget row carries general integer
//! coefficients — not summation format — so the cyclic baseline cannot
//! encode it at all while the commute driver handles it natively, probing
//! exactly the "arbitrary linear equality" universality axis of Table I.
//! The two encodings are differentially comparable on every class: the
//! slack path's reports are the byte-level regression anchor.

use choco_mathkit::SplitMix64;
use choco_model::{Problem, ProblemError};

/// How a knapsack instance encodes its capacity constraint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KnapsackEncoding {
    /// Equality budget row with explicit binary slack variables in the
    /// problem (the paper's Eq. (1) formulation; the regression anchor).
    #[default]
    Slack,
    /// First-class `≤` capacity row over the item variables only; slack
    /// synthesis happens inside the driver layer.
    Native,
}

impl KnapsackEncoding {
    /// Encoding mnemonic (`"slack"` / `"native"`), as spelled in spec
    /// files and grid axes.
    pub fn label(&self) -> &'static str {
        match self {
            KnapsackEncoding::Slack => "slack",
            KnapsackEncoding::Native => "native",
        }
    }

    /// Parses a spec-file label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "slack" => Some(KnapsackEncoding::Slack),
            "native" => Some(KnapsackEncoding::Native),
            _ => None,
        }
    }
}

/// Variable layout of a generated knapsack instance.
///
/// * item variable `x_i` at index `i` for `i < weights.len()`
/// * slack bit `s_j` (worth `2^j`) at `weights.len() + j`
#[derive(Clone, Debug, PartialEq)]
pub struct KnapsackLayout {
    /// Item weights (positive integers).
    pub weights: Vec<u64>,
    /// The exact budget `W`.
    pub capacity: u64,
}

impl KnapsackLayout {
    /// Number of slack bits: `⌈log₂(W+1)⌉`.
    pub fn slack_bits(&self) -> usize {
        (64 - self.capacity.leading_zeros()) as usize
    }

    /// Index of the item variable `x_i`.
    pub fn x(&self, i: usize) -> usize {
        debug_assert!(i < self.weights.len());
        i
    }

    /// Index of the slack bit `s_j`.
    pub fn s(&self, j: usize) -> usize {
        debug_assert!(j < self.slack_bits());
        self.weights.len() + j
    }

    /// Total number of binary variables (items + slack bits).
    pub fn n_vars(&self) -> usize {
        self.weights.len() + self.slack_bits()
    }

    /// Total selected item weight under `bits` (test oracle).
    pub fn weight_of(&self, bits: u64) -> u64 {
        self.weights
            .iter()
            .enumerate()
            .filter(|&(i, _)| (bits >> self.x(i)) & 1 == 1)
            .map(|(_, &w)| w)
            .sum()
    }

    /// The feasible assignment packing `items` with the matching slack,
    /// or `None` when the selection exceeds the budget.
    pub fn assignment(&self, items: u64) -> Option<u64> {
        let used = self.weight_of(items);
        if used > self.capacity {
            return None;
        }
        let residual = self.capacity - used;
        let mut bits = items & ((1u64 << self.weights.len()) - 1);
        for j in 0..self.slack_bits() {
            if (residual >> j) & 1 == 1 {
                bits |= 1 << self.s(j);
            }
        }
        Some(bits)
    }
}

/// Generates a knapsack instance from explicit weights and values.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics on empty/zero-weight items, a zero capacity, or mismatched
/// weight/value lengths.
pub fn knapsack(
    weights: &[u64],
    values: &[f64],
    capacity: u64,
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(!weights.is_empty(), "no items");
    assert_eq!(weights.len(), values.len(), "weights/values mismatch");
    assert!(weights.iter().all(|&w| w > 0), "zero-weight item");
    assert!(capacity > 0, "zero capacity");
    let layout = KnapsackLayout {
        weights: weights.to_vec(),
        capacity,
    };
    let mut b = Problem::builder(layout.n_vars())
        .maximize()
        .name(format!("KNAP {}I-{capacity}W seed={seed}", weights.len()));
    for (i, &v) in values.iter().enumerate() {
        b = b.linear(layout.x(i), v);
    }
    let terms = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (layout.x(i), w as i64))
        .chain((0..layout.slack_bits()).map(|j| (layout.s(j), 1i64 << j)));
    b = b.equality(terms, capacity as i64);
    b.build()
}

/// Generates a *native-inequality* knapsack instance: same items as
/// [`knapsack`], but the capacity stays a first-class `≤` row and no
/// slack variable appears in the problem.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics on empty/zero-weight items, a zero capacity, or mismatched
/// weight/value lengths.
pub fn knapsack_native(
    weights: &[u64],
    values: &[f64],
    capacity: u64,
    seed: u64,
) -> Result<Problem, ProblemError> {
    assert!(!weights.is_empty(), "no items");
    assert_eq!(weights.len(), values.len(), "weights/values mismatch");
    assert!(weights.iter().all(|&w| w > 0), "zero-weight item");
    assert!(capacity > 0, "zero capacity");
    let mut b = Problem::builder(weights.len()).maximize().name(format!(
        "KNAP {}I-{capacity}W native seed={seed}",
        weights.len()
    ));
    for (i, &v) in values.iter().enumerate() {
        b = b.linear(i, v);
    }
    b = b.less_equal(
        weights.iter().enumerate().map(|(i, &w)| (i, w as i64)),
        capacity as i64,
    );
    b.build()
}

/// Generates a seeded random knapsack instance with `n_items` items and
/// exact budget `capacity`: weights uniform in `[1, 5]`, values in
/// `[1, 10)`, correlated weakly with weight so the greedy order is not
/// trivially optimal.
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics when `n_items == 0` or `capacity == 0`.
pub fn knapsack_random(n_items: usize, capacity: u64, seed: u64) -> Result<Problem, ProblemError> {
    knapsack_random_with(n_items, capacity, seed, KnapsackEncoding::Slack)
}

/// [`knapsack_random`] with an explicit [`KnapsackEncoding`]. Both
/// encodings of a given `(n_items, capacity, seed)` draw *identical*
/// weights and values (one shared generator stream), so their optima and
/// feasible item selections coincide — only the constraint formulation
/// differs. `Slack` is byte-identical to [`knapsack_random`].
///
/// # Errors
///
/// Propagates [`ProblemError`] on oversized instances.
///
/// # Panics
///
/// Panics when `n_items == 0` or `capacity == 0`.
pub fn knapsack_random_with(
    n_items: usize,
    capacity: u64,
    seed: u64,
    encoding: KnapsackEncoding,
) -> Result<Problem, ProblemError> {
    assert!(n_items >= 1 && capacity >= 1, "degenerate knapsack shape");
    let mut rng = SplitMix64::new(seed ^ 0x9A_C4_11);
    let weights: Vec<u64> = (0..n_items).map(|_| rng.gen_range(1, 6)).collect();
    let values: Vec<f64> = weights
        .iter()
        .map(|&w| (w as f64 + rng.gen_range_f64(1.0, 6.0)).round())
        .collect();
    match encoding {
        KnapsackEncoding::Slack => knapsack(&weights, &values, capacity, seed),
        KnapsackEncoding::Native => knapsack_native(&weights, &values, capacity, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    fn layout(p_weights: &[u64], cap: u64) -> KnapsackLayout {
        KnapsackLayout {
            weights: p_weights.to_vec(),
            capacity: cap,
        }
    }

    #[test]
    fn slack_register_covers_every_residual() {
        for cap in 1u64..=40 {
            let l = layout(&[1], cap);
            assert!(
                (1u64 << l.slack_bits()) > cap,
                "cap {cap}: {} bits",
                l.slack_bits()
            );
        }
    }

    #[test]
    fn explicit_instance_matches_shape() {
        // 3 items, W = 6 → 3 slack bits → 6 vars, 1 constraint.
        let p = knapsack(&[2, 3, 4], &[3.0, 5.0, 7.0], 6, 1).unwrap();
        assert_eq!(p.n_vars(), 6);
        assert_eq!(p.constraints().len(), 1);
        // {x1, x2} weighs 7 > 6: infeasible at any slack.
        let l = layout(&[2, 3, 4], 6);
        assert!(l.assignment(0b110).is_none());
        // {x0, x2} weighs 6: slack 0.
        assert!(p.is_feasible(l.assignment(0b101).unwrap()));
    }

    #[test]
    fn every_underweight_selection_extends_to_feasible() {
        let p = knapsack_random(5, 8, 3).unwrap();
        let weights: Vec<u64> = {
            // Regenerate the same weights the generator drew.
            let mut rng = SplitMix64::new(3 ^ 0x9A_C4_11);
            (0..5).map(|_| rng.gen_range(1, 6)).collect()
        };
        let l = layout(&weights, 8);
        for items in 0u64..(1 << 5) {
            match l.assignment(items) {
                Some(bits) => {
                    assert!(p.is_feasible(bits), "items={items:b}");
                    assert_eq!(l.weight_of(bits), l.weight_of(items));
                }
                None => assert!(l.weight_of(items) > 8),
            }
        }
    }

    #[test]
    fn empty_selection_is_always_feasible() {
        for seed in 0..20 {
            let p = knapsack_random(6, 9, seed).unwrap();
            assert!(p.first_feasible().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn optimum_respects_budget() {
        let p = knapsack(&[2, 3, 4, 1], &[3.0, 5.0, 7.0, 2.0], 6, 1).unwrap();
        let opt = solve_exact(&p).unwrap();
        let l = layout(&[2, 3, 4, 1], 6);
        for &sol in &opt.solutions {
            assert!(l.weight_of(sol) <= 6);
        }
        // {x2, x0} = 7.0+3.0 = 10 at weight 6 beats everything else.
        assert_eq!(opt.value, 10.0);
    }

    #[test]
    fn budget_row_is_not_summation_format() {
        let p = knapsack_random(5, 8, 1).unwrap();
        assert!(p
            .constraints()
            .eqs()
            .iter()
            .any(|eq| !eq.is_summation_format()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = knapsack_random(6, 8, 4).unwrap();
        let b = knapsack_random(6, 8, 4).unwrap();
        let c = knapsack_random(6, 8, 5).unwrap();
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_ne!(format!("{a}"), format!("{c}"));
    }

    #[test]
    fn encoding_labels_round_trip() {
        for enc in [KnapsackEncoding::Slack, KnapsackEncoding::Native] {
            assert_eq!(KnapsackEncoding::parse(enc.label()), Some(enc));
        }
        assert_eq!(KnapsackEncoding::parse("penalty"), None);
    }

    #[test]
    fn random_with_slack_is_byte_identical_to_knapsack_random() {
        for seed in 0..8 {
            let anchor = knapsack_random(5, 8, seed).unwrap();
            let slack = knapsack_random_with(5, 8, seed, KnapsackEncoding::Slack).unwrap();
            assert_eq!(format!("{anchor}"), format!("{slack}"), "seed {seed}");
        }
    }

    #[test]
    fn native_instance_has_no_slack_variables() {
        let p = knapsack_random_with(5, 8, 3, KnapsackEncoding::Native).unwrap();
        assert_eq!(p.n_vars(), 5);
        assert!(p.constraints().eqs().is_empty());
        assert!(p.constraints().has_inequalities());
        assert!(p.name().contains("native"));
    }

    #[test]
    fn both_encodings_share_one_optimum() {
        // Identical generator stream → identical items → identical optimal
        // value, even though the slack instance optimizes over more bits.
        for seed in 0..6 {
            let slack = knapsack_random_with(4, 6, seed, KnapsackEncoding::Slack).unwrap();
            let native = knapsack_random_with(4, 6, seed, KnapsackEncoding::Native).unwrap();
            let vs = solve_exact(&slack).unwrap();
            let vn = solve_exact(&native).unwrap();
            assert_eq!(vs.value, vn.value, "seed {seed}");
            // Native solutions are pure item selections; each must extend to
            // a feasible slack assignment with the same weight.
            let weights: Vec<u64> = {
                let mut rng = SplitMix64::new(seed ^ 0x9A_C4_11);
                (0..4).map(|_| rng.gen_range(1, 6)).collect()
            };
            let l = layout(&weights, 6);
            for &sol in &vn.solutions {
                assert!(l.assignment(sol).is_some(), "seed {seed} sol {sol:b}");
            }
        }
    }

    #[test]
    fn explicit_native_instance_matches_shape() {
        let p = knapsack_native(&[2, 3, 4], &[3.0, 5.0, 7.0], 6, 1).unwrap();
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.constraints().ineqs().len(), 1);
        let opt = solve_exact(&p).unwrap();
        assert_eq!(opt.value, 10.0); // {x0, x2} at weight 6, same as slack form.
    }
}
