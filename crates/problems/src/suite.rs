//! The benchmark suite: the paper's 12 scale classes F1–F4, G1–G4, K1–K4.
//!
//! The paper evaluates 400 literature-derived cases grouped into four scale
//! classes per domain (6–28 variables, 3–16 constraints). This reproduction
//! generates seeded instances with the same structure per class, re-scaled
//! so the largest class stays within CPU state-vector reach (≤ 24 qubits;
//! see DESIGN.md §6). Use [`BenchmarkSuite::standard`] for single
//! representatives and [`instances`] for per-class samples.

use crate::assigncap::assigncap_random;
use crate::cover::cover_random;
use crate::flp::flp;
use crate::gcp::gcp_random;
use crate::knapsack::{knapsack_random, knapsack_random_with, KnapsackEncoding};
use crate::kpp::kpp_random;
use crate::mdknap::mdknap_random;
use choco_model::Problem;

/// Which application domain a case belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Facility location problem.
    Flp,
    /// Graph coloring problem.
    Gcp,
    /// K-partition problem.
    Kpp,
    /// Exact cover / set partitioning (extended suite).
    Cover,
    /// Bounded knapsack with an equality budget (extended suite).
    Knapsack,
    /// Multi-dimensional knapsack with native `≤` rows (native suite).
    MdKnapsack,
    /// Assignment with agent capacities — mixed `=`/`≤` rows (native suite).
    AssignCap,
}

impl Domain {
    /// Domain mnemonic (`"FLP"`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            Domain::Flp => "FLP",
            Domain::Gcp => "GCP",
            Domain::Kpp => "KPP",
            Domain::Cover => "COVER",
            Domain::Knapsack => "KNAP",
            Domain::MdKnapsack => "MDKNAP",
            Domain::AssignCap => "ASSIGN",
        }
    }
}

/// One benchmark case: a scale-class id plus a generated instance.
#[derive(Clone, Debug)]
pub struct BenchmarkCase {
    /// Class id (`"F1"` … `"K4"`).
    pub id: &'static str,
    /// Scale label in the paper's notation (`"2F-1D"`, `"3V-1E-3C"` …).
    pub scale: &'static str,
    /// Domain.
    pub domain: Domain,
    /// The generated instance.
    pub problem: Problem,
}

/// Generates the instance of class `id` with the given seed.
///
/// # Panics
///
/// Panics on an unknown class id (valid: F1–F4, G1–G4, K1–K4) — generation
/// itself cannot fail for these fixed shapes.
pub fn instance(id: &str, seed: u64) -> Problem {
    match id {
        // FLP: facilities × demands (vars = F(1+2D)).
        "F1" => flp(2, 1, seed).expect("F1"),
        "F2" => flp(2, 2, seed).expect("F2"),
        "F3" => flp(3, 2, seed).expect("F3"),
        "F4" => flp(3, 3, seed).expect("F4"),
        // GCP: vertices-edges-colors (vars = (V+E)·K).
        "G1" => gcp_random(3, 1, 3, seed).expect("G1"),
        "G2" => gcp_random(4, 2, 3, seed).expect("G2"),
        "G3" => gcp_random(3, 3, 3, seed).expect("G3"),
        "G4" => gcp_random(4, 4, 3, seed).expect("G4"),
        // KPP: vertices-edges-blocks (vars = V·B), balanced.
        "K1" => kpp_random(4, 3, 2, true, seed).expect("K1"),
        "K2" => kpp_random(6, 7, 2, true, seed).expect("K2"),
        "K3" => kpp_random(8, 10, 2, true, seed).expect("K3"),
        "K4" => kpp_random(6, 7, 3, true, seed).expect("K4"),
        // Exact cover: elements × subsets (vars = S).
        "X1" => cover_random(4, 6, seed).expect("X1"),
        "X2" => cover_random(6, 10, seed).expect("X2"),
        "X3" => cover_random(8, 14, seed).expect("X3"),
        "X4" => cover_random(10, 18, seed).expect("X4"),
        // Bounded knapsack: items × budget (vars = I + ⌈log₂(W+1)⌉).
        "B1" => knapsack_random(4, 6, seed).expect("B1"),
        "B2" => knapsack_random(6, 8, seed).expect("B2"),
        "B3" => knapsack_random(8, 10, seed).expect("B3"),
        "B4" => knapsack_random(10, 12, seed).expect("B4"),
        // Native-encoding knapsack: the same seeded items as B1–B4 with the
        // budget as a first-class ≤ row (vars = I; slack lives in the driver).
        "B1n" => knapsack_random_with(4, 6, seed, KnapsackEncoding::Native).expect("B1n"),
        "B2n" => knapsack_random_with(6, 8, seed, KnapsackEncoding::Native).expect("B2n"),
        "B3n" => knapsack_random_with(8, 10, seed, KnapsackEncoding::Native).expect("B3n"),
        "B4n" => knapsack_random_with(10, 12, seed, KnapsackEncoding::Native).expect("B4n"),
        // Multi-dimensional knapsack: items × dimensions (vars = I).
        "M1" => mdknap_random(4, 2, seed).expect("M1"),
        "M2" => mdknap_random(6, 2, seed).expect("M2"),
        // Assignment with capacities: agents × tasks (vars = A·T).
        "A1" => assigncap_random(2, 2, seed).expect("A1"),
        "A2" => assigncap_random(2, 3, seed).expect("A2"),
        other => panic!("unknown benchmark class `{other}`"),
    }
}

/// Scale label of a class in the paper's notation.
pub fn scale_label(id: &str) -> &'static str {
    match id {
        "F1" => "2F-1D",
        "F2" => "2F-2D",
        "F3" => "3F-2D",
        "F4" => "3F-3D",
        "G1" => "3V-1E-3C",
        "G2" => "4V-2E-3C",
        "G3" => "3V-3E-3C",
        "G4" => "4V-4E-3C",
        "K1" => "4V-3E-2B",
        "K2" => "6V-7E-2B",
        "K3" => "8V-10E-2B",
        "K4" => "6V-7E-3B",
        "X1" => "4U-6S",
        "X2" => "6U-10S",
        "X3" => "8U-14S",
        "X4" => "10U-18S",
        "B1" => "4I-6W",
        "B2" => "6I-8W",
        "B3" => "8I-10W",
        "B4" => "10I-12W",
        "B1n" => "4I-6W-nat",
        "B2n" => "6I-8W-nat",
        "B3n" => "8I-10W-nat",
        "B4n" => "10I-12W-nat",
        "M1" => "4I-2D",
        "M2" => "6I-2D",
        "A1" => "2A-2T",
        "A2" => "2A-3T",
        other => panic!("unknown benchmark class `{other}`"),
    }
}

/// Domain of a class id.
pub fn domain_of(id: &str) -> Domain {
    match id.as_bytes()[0] {
        b'F' => Domain::Flp,
        b'G' => Domain::Gcp,
        b'K' => Domain::Kpp,
        b'X' => Domain::Cover,
        b'B' => Domain::Knapsack,
        b'M' => Domain::MdKnapsack,
        b'A' => Domain::AssignCap,
        _ => panic!("unknown benchmark class `{id}`"),
    }
}

/// `count` seeded instances of class `id` (seeds 1..=count).
pub fn instances(id: &str, count: usize) -> Vec<Problem> {
    (1..=count as u64).map(|seed| instance(id, seed)).collect()
}

/// All 12 class ids of the paper's suite, in table order.
pub const ALL_CLASSES: [&str; 12] = [
    "F1", "F2", "F3", "F4", "G1", "G2", "G3", "G4", "K1", "K2", "K3", "K4",
];

/// The paper's 12 classes plus the extended exact-cover (X1–X4) and
/// knapsack (B1–B4) classes.
pub const EXTENDED_CLASSES: [&str; 20] = [
    "F1", "F2", "F3", "F4", "G1", "G2", "G3", "G4", "K1", "K2", "K3", "K4", "X1", "X2", "X3", "X4",
    "B1", "B2", "B3", "B4",
];

/// The native-inequality classes: knapsack re-encoded with first-class
/// `≤` budget rows (B1n–B4n), multi-dimensional knapsack (M1–M2), and
/// assignment with agent capacities (A1–A2). Slack synthesis for all of
/// these happens inside the driver layer, not in the problem definition.
pub const NATIVE_CLASSES: [&str; 8] = ["B1n", "B2n", "B3n", "B4n", "M1", "M2", "A1", "A2"];

/// The small classes used for hardware-style (noisy) experiments.
pub const SMALL_CLASSES: [&str; 3] = ["F1", "G1", "K1"];

/// A named collection of benchmark cases.
#[derive(Clone, Debug, Default)]
pub struct BenchmarkSuite {
    cases: Vec<BenchmarkCase>,
}

impl BenchmarkSuite {
    /// One representative per class (seed 1), all 12 paper classes.
    pub fn standard() -> Self {
        Self::from_ids(&ALL_CLASSES, 1)
    }

    /// One representative per class (seed 1), all 20 extended classes.
    pub fn extended() -> Self {
        Self::from_ids(&EXTENDED_CLASSES, 1)
    }

    /// One representative per class (seed 1), all 8 native-inequality
    /// classes.
    pub fn native() -> Self {
        Self::from_ids(&NATIVE_CLASSES, 1)
    }

    /// The small suite (F1, G1, K1) used on noisy devices.
    pub fn small() -> Self {
        Self::from_ids(&SMALL_CLASSES, 1)
    }

    /// Builds a suite from explicit class ids and a seed.
    pub fn from_ids(ids: &[&'static str], seed: u64) -> Self {
        let cases = ids
            .iter()
            .map(|&id| BenchmarkCase {
                id,
                scale: scale_label(id),
                domain: domain_of(id),
                problem: instance(id, seed),
            })
            .collect();
        BenchmarkSuite { cases }
    }

    /// The cases in order.
    pub fn cases(&self) -> &[BenchmarkCase] {
        &self.cases
    }

    /// Looks up a case by id.
    pub fn case(&self, id: &str) -> Option<&BenchmarkCase> {
        self.cases.iter().find(|c| c.id == id)
    }

    /// Number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// `true` when the suite has no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Iterates over the cases.
    pub fn iter(&self) -> std::slice::Iter<'_, BenchmarkCase> {
        self.cases.iter()
    }
}

impl<'a> IntoIterator for &'a BenchmarkSuite {
    type Item = &'a BenchmarkCase;
    type IntoIter = std::slice::Iter<'a, BenchmarkCase>;
    fn into_iter(self) -> Self::IntoIter {
        self.cases.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_has_twelve_cases() {
        let suite = BenchmarkSuite::standard();
        assert_eq!(suite.len(), 12);
        assert!(suite.case("F1").is_some());
        assert!(suite.case("K4").is_some());
        assert!(suite.case("Z9").is_none());
    }

    #[test]
    fn variable_counts_grow_within_each_domain() {
        let suite = BenchmarkSuite::standard();
        for domain in ["F", "G", "K"] {
            let sizes: Vec<usize> = (1..=4)
                .map(|k| {
                    suite
                        .case(&format!("{domain}{k}"))
                        .unwrap()
                        .problem
                        .n_vars()
                })
                .collect();
            for w in sizes.windows(2) {
                assert!(w[1] >= w[0], "{domain}: {sizes:?}");
            }
        }
    }

    #[test]
    fn all_cases_are_feasible_and_fit_the_simulator() {
        for case in BenchmarkSuite::standard().iter() {
            assert!(
                case.problem.first_feasible().is_some(),
                "{} infeasible",
                case.id
            );
            assert!(
                case.problem.n_vars() <= 24,
                "{} too large: {} vars",
                case.id,
                case.problem.n_vars()
            );
        }
    }

    #[test]
    fn constraint_counts_span_paper_range() {
        let suite = BenchmarkSuite::standard();
        let counts: Vec<usize> = suite
            .iter()
            .map(|c| c.problem.constraints().len())
            .collect();
        assert_eq!(*counts.iter().min().unwrap(), 3); // F1
        assert!(*counts.iter().max().unwrap() >= 12); // G4-scale
    }

    #[test]
    fn instances_are_deterministic_and_seed_varied() {
        let a = instance("G2", 4);
        let b = instance("G2", 4);
        let c = instance("G2", 5);
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_ne!(format!("{a}"), format!("{c}"));
        assert_eq!(instances("F1", 3).len(), 3);
    }

    #[test]
    fn domains_and_labels() {
        assert_eq!(domain_of("F3"), Domain::Flp);
        assert_eq!(domain_of("G1"), Domain::Gcp);
        assert_eq!(domain_of("K2"), Domain::Kpp);
        assert_eq!(domain_of("X1"), Domain::Cover);
        assert_eq!(domain_of("B4"), Domain::Knapsack);
        assert_eq!(Domain::Kpp.label(), "KPP");
        assert_eq!(Domain::Cover.label(), "COVER");
        assert_eq!(Domain::Knapsack.label(), "KNAP");
        assert_eq!(scale_label("K1"), "4V-3E-2B");
        assert_eq!(scale_label("X2"), "6U-10S");
        assert_eq!(scale_label("B1"), "4I-6W");
    }

    #[test]
    fn extended_suite_is_feasible_and_fits_the_simulator() {
        let suite = BenchmarkSuite::extended();
        assert_eq!(suite.len(), 20);
        for case in suite.iter() {
            assert!(
                case.problem.first_feasible().is_some(),
                "{} infeasible",
                case.id
            );
            assert!(
                case.problem.n_vars() <= 24,
                "{} too large: {} vars",
                case.id,
                case.problem.n_vars()
            );
        }
    }

    #[test]
    fn native_suite_is_feasible_and_inequality_constrained() {
        let suite = BenchmarkSuite::native();
        assert_eq!(suite.len(), 8);
        for case in suite.iter() {
            assert!(
                case.problem.first_feasible().is_some(),
                "{} infeasible",
                case.id
            );
            assert!(
                case.problem.has_inequalities(),
                "{} has no native ≤ row",
                case.id
            );
            assert!(
                case.problem.n_vars() <= 24,
                "{} too large: {} vars",
                case.id,
                case.problem.n_vars()
            );
        }
        assert_eq!(domain_of("B2n"), Domain::Knapsack);
        assert_eq!(domain_of("M1"), Domain::MdKnapsack);
        assert_eq!(domain_of("A2"), Domain::AssignCap);
        assert_eq!(Domain::MdKnapsack.label(), "MDKNAP");
        assert_eq!(Domain::AssignCap.label(), "ASSIGN");
        assert_eq!(scale_label("B1n"), "4I-6W-nat");
    }

    #[test]
    fn native_knapsack_classes_share_items_with_slack_anchors() {
        // B{k}n draws the identical generator stream as B{k}: fewer
        // problem variables, same item weights in the budget row.
        for (nat, anchor) in [("B1n", "B1"), ("B2n", "B2")] {
            let n = instance(nat, 3);
            let a = instance(anchor, 3);
            assert!(n.n_vars() < a.n_vars(), "{nat} vs {anchor}");
            let row = &n.constraints().ineqs()[0];
            let eq = &a.constraints().eqs()[0];
            for &(v, c) in &row.terms {
                assert_eq!(eq.terms[v], (v, c), "{nat} item {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark class")]
    fn unknown_class_panics() {
        let _ = instance("Q7", 1);
    }
}
