//! Dense complex matrices.
//!
//! [`CMatrix`] is a row-major dense matrix over [`Complex64`]. It is used for
//! small-dimension exact computations: verifying gate unitaries, assembling
//! commute Hamiltonians for tests, the Trotter baseline's `2^n × 2^n`
//! Hamiltonian (which is *supposed* to be expensive — that blow-up is
//! Figure 12 of the paper), and the two-level unitary synthesis in
//! `choco-qsim`.

use crate::complex::{c64, Complex64};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use choco_mathkit::CMatrix;
///
/// let x = CMatrix::pauli_x();
/// let id = &x * &x;
/// assert!(id.approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex64>(
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from real entries (imaginary parts zero).
    pub fn from_real(rows: &[Vec<f64>]) -> Self {
        let complex_rows: Vec<Vec<Complex64>> = rows
            .iter()
            .map(|r| r.iter().map(|&x| c64(x, 0.0)).collect())
            .collect();
        CMatrix::from_rows(&complex_rows)
    }

    /// Pauli X.
    pub fn pauli_x() -> Self {
        CMatrix::from_real(&[vec![0.0, 1.0], vec![1.0, 0.0]])
    }

    /// Pauli Y.
    pub fn pauli_y() -> Self {
        CMatrix::from_rows(&[
            vec![Complex64::ZERO, c64(0.0, -1.0)],
            vec![c64(0.0, 1.0), Complex64::ZERO],
        ])
    }

    /// Pauli Z.
    pub fn pauli_z() -> Self {
        CMatrix::from_real(&[vec![1.0, 0.0], vec![0.0, -1.0]])
    }

    /// The raising operator `σ⁺¹ = |1⟩⟨0|` from Eq. (5) of the paper.
    pub fn sigma_plus() -> Self {
        CMatrix::from_real(&[vec![0.0, 0.0], vec![1.0, 0.0]])
    }

    /// The lowering operator `σ⁻¹ = |0⟩⟨1|` from Eq. (5) of the paper.
    pub fn sigma_minus() -> Self {
        CMatrix::from_real(&[vec![0.0, 1.0], vec![0.0, 0.0]])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in matvec");
        let mut out = vec![Complex64::ZERO; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = Complex64::ZERO;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *a * *b;
            }
            *slot = acc;
        }
        out
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// ```
    /// use choco_mathkit::CMatrix;
    /// let zz = CMatrix::pauli_z().kron(&CMatrix::pauli_z());
    /// assert_eq!(zz.rows(), 4);
    /// assert_eq!(zz[(3, 3)].re, 1.0);
    /// assert_eq!(zz[(1, 1)].re, -1.0);
    /// ```
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self[(r1, c1)];
                if a == Complex64::ZERO {
                    continue;
                }
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        out[(r1 * other.rows + r2, c1 * other.cols + c2)] = a * other[(r2, c2)];
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry magnitude (∞-ish norm, used for `expm` scaling).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Checks `A†A ≈ I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Checks `A ≈ A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// Commutator `[A, B] = AB − BA`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn commutator(&self, other: &CMatrix) -> CMatrix {
        &(self * other) - &(other * self)
    }

    /// Approximate memory footprint of the entry storage, in bytes.
    /// Used by the Figure 12 harness to report the Trotter baseline's
    /// memory blow-up.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Complex64>()
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        // ikj loop order: cache-friendly on row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * *b;
                }
            }
        }
        out
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>24}", format!("{}", self[(r, c)]))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = CMatrix::from_real(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let id = CMatrix::identity(2);
        assert!((&a * &id).approx_eq(&a, 1e-12));
        assert!((&id * &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for p in [CMatrix::pauli_x(), CMatrix::pauli_y(), CMatrix::pauli_z()] {
            assert!(p.is_unitary(1e-12));
            assert!(p.is_hermitian(1e-12));
            assert!((&p * &p).approx_eq(&CMatrix::identity(2), 1e-12));
        }
    }

    #[test]
    fn pauli_commutator_xy_is_2iz() {
        let comm = CMatrix::pauli_x().commutator(&CMatrix::pauli_y());
        let expect = CMatrix::pauli_z().scale(c64(0.0, 2.0));
        assert!(comm.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn sigma_plus_minus_are_adjoints() {
        assert!(CMatrix::sigma_plus()
            .dagger()
            .approx_eq(&CMatrix::sigma_minus(), 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CMatrix::from_real(&[vec![1.0, 2.0]]);
        let b = CMatrix::from_real(&[vec![3.0], vec![4.0]]);
        let k = a.kron(&b);
        assert_eq!((k.rows(), k.cols()), (2, 2));
        assert_eq!(k[(0, 0)].re, 3.0);
        assert_eq!(k[(1, 1)].re, 8.0);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = CMatrix::pauli_x();
        let b = CMatrix::pauli_y();
        let c = CMatrix::pauli_z();
        let d = CMatrix::identity(2);
        let lhs = &a.kron(&b) * &c.kron(&d);
        let rhs = (&a * &c).kron(&(&b * &d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn matvec_matches_mul() {
        let a = CMatrix::from_real(&[vec![1.0, -1.0], vec![2.0, 0.5]]);
        let v = vec![c64(1.0, 1.0), c64(0.0, -2.0)];
        let got = a.matvec(&v);
        assert!(got[0].approx_eq(c64(1.0, 3.0), 1e-12));
        assert!(got[1].approx_eq(c64(2.0, 1.0), 1e-12));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::pauli_x();
        let b = CMatrix::pauli_y();
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_of_pauli_is_zero() {
        assert!(CMatrix::pauli_x().trace().approx_eq(Complex64::ZERO, 1e-12));
        assert_eq!(CMatrix::identity(5).trace().re, 5.0);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((CMatrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mul_rejects_bad_shapes() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn storage_bytes_counts_entries() {
        let m = CMatrix::zeros(4, 4);
        assert_eq!(m.storage_bytes(), 16 * 16);
    }
}
