//! Double-precision complex arithmetic.
//!
//! The simulator and Hamiltonian machinery only need a small, predictable
//! subset of complex arithmetic, so we implement it here rather than pulling
//! in an external crate. [`Complex64`] is a plain `Copy` value type with the
//! usual field/method names (`re`, `im`, [`Complex64::conj`],
//! [`Complex64::norm_sqr`], ...).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use choco_mathkit::Complex64;
///
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.norm_sqr(), 25.0);
/// assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`Complex64`].
///
/// ```
/// use choco_mathkit::{c64, Complex64};
/// assert_eq!(c64(1.0, -2.0), Complex64::new(1.0, -2.0));
/// ```
#[inline]
pub fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{iθ}`.
    ///
    /// ```
    /// use choco_mathkit::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` — a unit phase. This is the workhorse of diagonal
    /// Hamiltonian evolution.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`. Cheaper than [`Complex64::abs`]; used for
    /// probabilities.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplication by the imaginary unit, `i·z`, without a full complex
    /// multiply.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplication by `-i`, `-i·z`.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Complex64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if both components are within `tol` of `other`'s.
    ///
    /// ```
    /// use choco_mathkit::c64;
    /// assert!(c64(1.0, 0.0).approx_eq(c64(1.0 + 1e-13, -1e-13), 1e-9));
    /// ```
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z == 0` (produces infinities in release).
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d != 0.0, "division by complex zero");
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: u32) -> Self {
        let mut base = self;
        let mut acc = Complex64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z · w⁻¹
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64 {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::from(2.5), c64(2.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = c64(1.5, -2.0);
        let b = c64(-0.5, 3.25);
        assert!((a + b - b).approx_eq(a, 1e-12));
        assert!((a * b / b).approx_eq(a, 1e-12));
        assert!((-a + a).approx_eq(Complex64::ZERO, 1e-12));
    }

    #[test]
    fn mul_matches_definition() {
        let a = c64(2.0, 3.0);
        let b = c64(4.0, -5.0);
        // (2+3i)(4-5i) = 8 -10i +12i +15 = 23 + 2i
        assert!(a.mul(b).approx_eq(c64(23.0, 2.0), 1e-12));
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = c64(0.7, -1.3);
        assert!(a.mul_i().approx_eq(a * Complex64::I, 1e-12));
        assert!(a.mul_neg_i().approx_eq(a * -Complex64::I, 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.73);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.73).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let theta = k as f64 * 0.41 - 3.0;
            let z = Complex64::cis(theta);
            assert!((z.norm_sqr() - 1.0).abs() < 1e-12);
            assert!(z.approx_eq(c64(0.0, theta).exp(), 1e-12));
        }
    }

    #[test]
    fn exp_of_real_is_real() {
        let z = c64(1.0, 0.0).exp();
        assert!(z.approx_eq(c64(std::f64::consts::E, 0.0), 1e-12));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = c64(0.9, 0.3);
        let mut acc = Complex64::ONE;
        for n in 0..10u32 {
            assert!(z.powi(n).approx_eq(acc, 1e-10));
            acc *= z;
        }
    }

    #[test]
    fn recip_is_inverse() {
        let z = c64(3.0, -4.0);
        assert!((z * z.recip()).approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn sum_folds() {
        let total: Complex64 = (0..4).map(|k| c64(k as f64, 1.0)).sum();
        assert!(total.approx_eq(c64(6.0, 4.0), 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1.000000-2.000000i");
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1.000000+2.000000i");
    }
}
