//! A tiny deterministic pseudo-random generator.
//!
//! Benchmark instances must be reproducible across runs and platforms, so the
//! problem generators use this self-contained SplitMix64 generator instead of
//! an external crate whose stream might change between versions. (Quantum
//! measurement *sampling* uses `rand` in `choco-qsim`; instance *generation*
//! uses this.)

/// SplitMix64: a fast, high-quality 64-bit PRNG with a one-word state.
///
/// # Examples
///
/// ```
/// use choco_mathkit::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)` (Lemire-style rejection-free for our
    /// small ranges; uses modulo with negligible bias for range ≪ 2^64).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator (for per-instance seeding).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0, (i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0, xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(3, 9);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = SplitMix64::new(123);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| rng.next_f64()).sum();
        assert!((total / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SplitMix64::new(1);
        assert!(rng.choose::<u8>(&[]).is_none());
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SplitMix64::new(42);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
