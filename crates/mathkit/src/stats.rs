//! Small statistics helpers used by the benchmark harness.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation. Returns 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of positive values; zeros/negatives are skipped.
/// The paper's "235× improvement" style aggregates are geometric means of
/// per-benchmark ratios.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

/// Linear-interpolated percentile, `q ∈ [0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is out of range.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        // zeros skipped
        assert!((geometric_mean(&[0.0, 4.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn online_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - mean(&xs)).abs() < 1e-12);
        assert!((acc.std_dev() - std_dev(&xs)).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }
}
