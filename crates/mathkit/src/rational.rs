//! Exact rational arithmetic and Gaussian elimination.
//!
//! Constraint matrices in constrained binary optimization are small integer
//! matrices; Choco-Q needs *exact* answers to questions like "what is the
//! rank of `C`?", "is `C x = c` consistent?", and "what does the kernel of
//! `C` look like?". Floating point is unacceptable here (a spurious pivot
//! changes Δ and thus the driver Hamiltonian), so we do the linear algebra
//! over `ℚ` with `i128` numerators/denominators.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number with `i128` numerator and denominator.
///
/// Always kept in lowest terms with a positive denominator.
///
/// # Examples
///
/// ```
/// use choco_mathkit::Rational;
/// let a = Rational::new(2, 4);
/// assert_eq!(a, Rational::new(1, 2));
/// assert_eq!(a + a, Rational::from_int(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        if num == 0 {
            return Rational::ZERO;
        }
        let g = gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates an integer-valued rational.
    #[inline]
    pub fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (lowest terms, sign carried here).
    #[inline]
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[inline]
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Is this exactly zero?
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Is this an integer?
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The value as `f64` (lossy; for display only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// The result of reducing an integer matrix to reduced row echelon form
/// over `ℚ`.
#[derive(Clone, Debug)]
pub struct RowEchelon {
    /// The reduced rows (rational entries), pivot columns normalized to 1.
    pub rows: Vec<Vec<Rational>>,
    /// Column index of the pivot in each non-zero row.
    pub pivot_cols: Vec<usize>,
    /// Rank of the matrix.
    pub rank: usize,
    /// Number of columns of the input.
    pub n_cols: usize,
}

impl RowEchelon {
    /// Columns that carry no pivot (the free variables of `A x = 0`).
    pub fn free_cols(&self) -> Vec<usize> {
        let mut pivot_set = vec![false; self.n_cols];
        for &p in &self.pivot_cols {
            pivot_set[p] = true;
        }
        (0..self.n_cols).filter(|&c| !pivot_set[c]).collect()
    }
}

/// Reduced row echelon form of an integer matrix over `ℚ`.
///
/// # Examples
///
/// ```
/// use choco_mathkit::row_echelon;
/// let e = row_echelon(&[vec![1, 0, -1, 0], vec![1, 1, 0, 1]]);
/// assert_eq!(e.rank, 2);
/// assert_eq!(e.free_cols(), vec![2, 3]);
/// ```
pub fn row_echelon(matrix: &[Vec<i64>]) -> RowEchelon {
    let n_cols = matrix.first().map_or(0, |r| r.len());
    let mut rows: Vec<Vec<Rational>> = matrix
        .iter()
        .map(|r| {
            assert_eq!(r.len(), n_cols, "ragged matrix");
            r.iter().map(|&x| Rational::from_int(x as i128)).collect()
        })
        .collect();

    let mut pivot_cols = Vec::new();
    let mut pivot_row = 0usize;
    for col in 0..n_cols {
        // Find a row at or below `pivot_row` with a non-zero entry in `col`.
        let Some(src) = (pivot_row..rows.len()).find(|&r| !rows[r][col].is_zero()) else {
            continue;
        };
        rows.swap(pivot_row, src);
        // Normalize the pivot to 1.
        let inv = rows[pivot_row][col].recip();
        for cell in rows[pivot_row][col..n_cols].iter_mut() {
            *cell = *cell * inv;
        }
        // Eliminate the column everywhere else (fully reduced form).
        for r in 0..rows.len() {
            if r != pivot_row && !rows[r][col].is_zero() {
                let factor = rows[r][col];
                // Two distinct rows of the same Vec are read and written,
                // so an iterator cannot replace the index here.
                #[allow(clippy::needless_range_loop)]
                for c in col..n_cols {
                    let delta = factor * rows[pivot_row][c];
                    rows[r][c] = rows[r][c] - delta;
                }
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
        if pivot_row == rows.len() {
            break;
        }
    }

    RowEchelon {
        rank: pivot_cols.len(),
        rows,
        pivot_cols,
        n_cols,
    }
}

/// Rank of an integer matrix (exact).
pub fn rank(matrix: &[Vec<i64>]) -> usize {
    row_echelon(matrix).rank
}

/// A rational basis of the kernel (null space) of an integer matrix, one
/// basis vector per free column, produced by setting that free variable to 1
/// and the other free variables to 0.
///
/// This mirrors how the paper derives Δ in the Figure 3 example: with
/// `C = [[1,0,-1,0],[1,1,0,1]]`, the kernel basis is
/// `(1,-1,1,0)` and `(0,-1,0,1)` — the paper's `−u⃗₁` and `u⃗₂`.
pub fn kernel_basis(matrix: &[Vec<i64>]) -> Vec<Vec<Rational>> {
    let ech = row_echelon(matrix);
    let free = ech.free_cols();
    let mut basis = Vec::with_capacity(free.len());
    for &fc in &free {
        let mut v = vec![Rational::ZERO; ech.n_cols];
        v[fc] = Rational::ONE;
        // Each pivot variable is determined by the free ones:
        // row: x_pivot + Σ a_j x_j = 0  ⇒  x_pivot = -a_fc.
        for (row_idx, &pc) in ech.pivot_cols.iter().enumerate() {
            v[pc] = -ech.rows[row_idx][fc];
        }
        basis.push(v);
    }
    basis
}

/// Incrementally tracks the row space of a growing set of rational vectors.
///
/// Used by the Δ-selection fallback: greedily add small-support solutions of
/// `C u = 0` until they span the whole kernel.
#[derive(Clone, Debug, Default)]
pub struct SpanTracker {
    reduced: Vec<Vec<Rational>>, // each with a leading 1 at its pivot
    pivots: Vec<usize>,
}

impl SpanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        SpanTracker::default()
    }

    /// Current dimension of the tracked span.
    pub fn dim(&self) -> usize {
        self.reduced.len()
    }

    /// Attempts to add `v` to the span. Returns `true` if `v` was linearly
    /// independent of the current span (and the span grew).
    pub fn insert(&mut self, v: &[Rational]) -> bool {
        let mut w = v.to_vec();
        for (row, &p) in self.reduced.iter().zip(self.pivots.iter()) {
            if !w[p].is_zero() {
                let factor = w[p];
                for (wi, ri) in w.iter_mut().zip(row.iter()) {
                    *wi = *wi - factor * *ri;
                }
            }
        }
        let Some(pivot) = w.iter().position(|x| !x.is_zero()) else {
            return false;
        };
        let inv = w[pivot].recip();
        for x in w.iter_mut() {
            *x = *x * inv;
        }
        self.reduced.push(w);
        self.pivots.push(pivot);
        true
    }

    /// Convenience: insert a vector of small integers.
    pub fn insert_ints(&mut self, v: &[i64]) -> bool {
        let vr: Vec<Rational> = v.iter().map(|&x| Rational::from_int(x as i128)).collect();
        self.insert(&vr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_normalization() {
        assert_eq!(Rational::new(4, -8), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(6, 3), Rational::from_int(2));
    }

    #[test]
    fn rational_field_axioms_spotcheck() {
        let a = Rational::new(3, 7);
        let b = Rational::new(-2, 5);
        assert_eq!(a + b - b, a);
        assert_eq!(a * b / b, a);
        assert_eq!(a * a.recip(), Rational::ONE);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn rational_ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
    }

    #[test]
    fn echelon_of_paper_example() {
        // Constraints of Fig. 2(a): x1 - x3 = 0 and x1 + x2 + x4 = 1
        // (the rhs is irrelevant for the kernel).
        let e = row_echelon(&[vec![1, 0, -1, 0], vec![1, 1, 0, 1]]);
        assert_eq!(e.rank, 2);
        assert_eq!(e.pivot_cols, vec![0, 1]);
        assert_eq!(e.free_cols(), vec![2, 3]);
    }

    #[test]
    fn kernel_basis_matches_paper_delta() {
        let basis = kernel_basis(&[vec![1, 0, -1, 0], vec![1, 1, 0, 1]]);
        assert_eq!(basis.len(), 2);
        // free col 2 ⇒ (1, -1, 1, 0); free col 3 ⇒ (0, -1, 0, 1)
        let ints: Vec<Vec<i128>> = basis
            .iter()
            .map(|v| v.iter().map(|r| r.numer() / r.denom()).collect())
            .collect();
        assert_eq!(ints[0], vec![1, -1, 1, 0]);
        assert_eq!(ints[1], vec![0, -1, 0, 1]);
    }

    #[test]
    fn kernel_vectors_annihilate_matrix() {
        let m = vec![vec![2, 1, -1, 3], vec![0, 1, 1, -1]];
        for v in kernel_basis(&m) {
            for row in &m {
                let dot = row
                    .iter()
                    .zip(v.iter())
                    .fold(Rational::ZERO, |acc, (&a, &x)| {
                        acc + Rational::from_int(a as i128) * x
                    });
                assert!(dot.is_zero());
            }
        }
    }

    #[test]
    fn rank_of_dependent_rows() {
        assert_eq!(rank(&[vec![1, 2], vec![2, 4]]), 1);
        assert_eq!(rank(&[vec![1, 0], vec![0, 1]]), 2);
        assert_eq!(rank(&[vec![0, 0]]), 0);
    }

    #[test]
    fn span_tracker_detects_dependence() {
        let mut t = SpanTracker::new();
        assert!(t.insert_ints(&[1, 0, -1]));
        assert!(t.insert_ints(&[0, 1, 1]));
        assert!(!t.insert_ints(&[1, 1, 0])); // sum of the first two
        assert_eq!(t.dim(), 2);
        assert!(t.insert_ints(&[0, 0, 1]));
        assert_eq!(t.dim(), 3);
    }
}
