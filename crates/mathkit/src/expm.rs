//! Matrix exponential by scaling-and-squaring with a Taylor core.
//!
//! Used by the Trotter-decomposition baseline (`choco-core::trotter`) to form
//! `e^{-iβH_d}` as a dense unitary — the expensive conventional path the
//! paper compares against in Figure 12 — and by tests that verify the exact
//! gate-level decompositions against first principles.

use crate::complex::Complex64;
use crate::matrix::CMatrix;

/// Computes `e^A` for a square complex matrix.
///
/// The matrix is scaled by `2^-s` so that its max-norm is below 0.5, the
/// exponential of the scaled matrix is evaluated by a Taylor series run to
/// machine precision, and the result is squared `s` times.
///
/// Accuracy is excellent for the anti-Hermitian generators used in this
/// project (`A = -iβH` with modest `β‖H‖`).
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use choco_mathkit::{expm, CMatrix, c64};
/// use std::f64::consts::PI;
///
/// // e^{-iπX/2} = -i X
/// let a = CMatrix::pauli_x().scale(c64(0.0, -PI / 2.0));
/// let u = expm(&a);
/// let expect = CMatrix::pauli_x().scale(c64(0.0, -1.0));
/// assert!(u.approx_eq(&expect, 1e-12));
/// ```
pub fn expm(a: &CMatrix) -> CMatrix {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    let norm = a.max_abs() * n as f64; // crude upper bound on the operator norm
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale(Complex64::from_re(0.5f64.powi(s as i32)));

    // Taylor: I + A + A²/2! + ... until the term is negligible.
    let mut result = CMatrix::identity(n);
    let mut term = CMatrix::identity(n);
    let mut k = 1u32;
    loop {
        term = &term * &scaled;
        term = term.scale(Complex64::from_re(1.0 / k as f64));
        result = &result + &term;
        if term.max_abs() < 1e-17 || k > 64 {
            break;
        }
        k += 1;
    }

    for _ in 0..s {
        result = &result * &result;
    }
    result
}

/// Computes the unitary `e^{-iθH}` of a Hermitian generator `H`.
///
/// Thin convenience wrapper over [`expm`] that also validates hermiticity in
/// debug builds.
pub fn expm_hermitian(h: &CMatrix, theta: f64) -> CMatrix {
    debug_assert!(h.is_hermitian(1e-9), "generator must be Hermitian");
    expm(&h.scale(Complex64::new(0.0, -theta)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn expm_of_zero_is_identity() {
        let z = CMatrix::zeros(3, 3);
        assert!(expm(&z).approx_eq(&CMatrix::identity(3), 1e-14));
    }

    #[test]
    fn expm_of_diagonal_is_entrywise_exp() {
        let mut d = CMatrix::zeros(2, 2);
        d[(0, 0)] = c64(0.0, 1.0);
        d[(1, 1)] = c64(0.0, -2.0);
        let e = expm(&d);
        assert!(e[(0, 0)].approx_eq(Complex64::cis(1.0), 1e-12));
        assert!(e[(1, 1)].approx_eq(Complex64::cis(-2.0), 1e-12));
        assert!(e[(0, 1)].approx_eq(Complex64::ZERO, 1e-12));
    }

    #[test]
    fn expm_pauli_rotation_formula() {
        // e^{-iθX} = cos θ I - i sin θ X
        for &theta in &[0.1, 0.8, 2.5, -1.3] {
            let u = expm_hermitian(&CMatrix::pauli_x(), theta);
            let expect = &CMatrix::identity(2).scale(c64(theta.cos(), 0.0))
                + &CMatrix::pauli_x().scale(c64(0.0, -theta.sin()));
            assert!(u.approx_eq(&expect, 1e-11), "theta={theta}");
        }
    }

    #[test]
    fn expm_of_antihermitian_is_unitary() {
        // A random-ish Hermitian H: e^{-iH} must be unitary.
        let h = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.3, -0.7), c64(0.0, 0.2)],
            vec![c64(0.3, 0.7), c64(-0.5, 0.0), c64(1.1, 0.0)],
            vec![c64(0.0, -0.2), c64(1.1, 0.0), c64(2.0, 0.0)],
        ]);
        assert!(h.is_hermitian(1e-12));
        let u = expm_hermitian(&h, 0.9);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn expm_additivity_for_commuting_generators() {
        // Z and I commute: e^{-i a Z} e^{-i b Z} = e^{-i (a+b) Z}
        let z = CMatrix::pauli_z();
        let lhs = &expm_hermitian(&z, 0.4) * &expm_hermitian(&z, 0.35);
        let rhs = expm_hermitian(&z, 0.75);
        assert!(lhs.approx_eq(&rhs, 1e-11));
    }

    #[test]
    fn expm_handles_larger_norm_via_scaling() {
        let u = expm_hermitian(&CMatrix::pauli_y(), 40.0);
        assert!(u.is_unitary(1e-9));
        let expect = &CMatrix::identity(2).scale(c64(40.0f64.cos(), 0.0))
            + &CMatrix::pauli_y().scale(c64(0.0, -(40.0f64.sin())));
        assert!(u.approx_eq(&expect, 1e-8));
    }
}
