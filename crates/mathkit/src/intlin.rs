//! Integer linear systems over binary and ternary variables.
//!
//! Choco-Q revolves around two enumeration questions about the constraint
//! system `C x = c`:
//!
//! 1. **Feasible assignments** — binary solutions `x ∈ {0,1}^n` of
//!    `C x = c`. One of them seeds the initial state; the full set defines
//!    the feasible subspace the algorithm is confined to.
//! 2. **Driver directions Δ** — ternary vectors `u ∈ {-1,0,1}^n` with
//!    `C u = 0` (Eq. (5) of the paper). Each `u` becomes one commute
//!    Hamiltonian term `Hc(u)`.
//!
//! Both are answered by a depth-first search with per-equation residual
//! interval pruning, which is exact and fast for the sparse, small-integer
//! constraint matrices that arise from FLP / GCP / KPP encodings.
//!
//! Systems may also carry **inequality rows** `a·x ≤ b` ([`LinSystem::push_le`]).
//! Feasibility, penalties and binary enumeration account for them; the kernel
//! machinery ([`ternary_kernel_basis`], [`integer_kernel_basis`]) deliberately
//! operates on the *equality rows only* — the driver layer absorbs inequality
//! rows through bounded slack registers, whose shifts are determined by the
//! equality-kernel directions (`δ_k = −a_k·u`).

use crate::rational::{kernel_basis, rank, Rational, SpanTracker};
use std::fmt;

/// One linear equation `Σ coeff·x_var = rhs` with sparse integer terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinEq {
    /// `(variable index, coefficient)` pairs; each variable appears at most once.
    pub terms: Vec<(usize, i64)>,
    /// Right-hand side.
    pub rhs: i64,
}

impl LinEq {
    /// Creates an equation, dropping zero coefficients and merging duplicates.
    pub fn new(terms: impl IntoIterator<Item = (usize, i64)>, rhs: i64) -> Self {
        let mut merged: Vec<(usize, i64)> = Vec::new();
        for (var, coeff) in terms {
            if coeff == 0 {
                continue;
            }
            if let Some(entry) = merged.iter_mut().find(|(v, _)| *v == var) {
                entry.1 += coeff;
            } else {
                merged.push((var, coeff));
            }
        }
        merged.retain(|&(_, c)| c != 0);
        merged.sort_by_key(|&(v, _)| v);
        LinEq { terms: merged, rhs }
    }

    /// Evaluates the left-hand side on a binary assignment packed as bits
    /// (`x_i = (bits >> i) & 1`).
    pub fn lhs_bits(&self, bits: u64) -> i64 {
        self.terms
            .iter()
            .map(|&(v, c)| c * ((bits >> v) & 1) as i64)
            .sum()
    }

    /// Residual `lhs − rhs` on a binary assignment.
    pub fn residual_bits(&self, bits: u64) -> i64 {
        self.lhs_bits(bits) - self.rhs
    }

    /// Is the equation satisfied by the given binary assignment?
    pub fn is_satisfied_bits(&self, bits: u64) -> bool {
        self.residual_bits(bits) == 0
    }

    /// Variables with non-zero coefficients.
    pub fn variables(&self) -> impl Iterator<Item = usize> + '_ {
        self.terms.iter().map(|&(v, _)| v)
    }

    /// `true` if every coefficient is `+1` or every coefficient is `-1` —
    /// the "summation format" that the cyclic-Hamiltonian baseline \[47\]
    /// requires (e.g. `x1 + x2 + x4 = 1`).
    pub fn is_summation_format(&self) -> bool {
        !self.terms.is_empty()
            && (self.terms.iter().all(|&(_, c)| c == 1) || self.terms.iter().all(|&(_, c)| c == -1))
    }

    /// Minimum of the left-hand side over the binary cube
    /// (sum of the negative coefficients).
    pub fn min_lhs(&self) -> i64 {
        self.terms.iter().map(|&(_, c)| c.min(0)).sum()
    }

    /// Maximum of the left-hand side over the binary cube
    /// (sum of the positive coefficients).
    pub fn max_lhs(&self) -> i64 {
        self.terms.iter().map(|&(_, c)| c.max(0)).sum()
    }

    /// The left-hand side rendered as a string (`x0 - 2*x3`), without the
    /// `= rhs` tail — used to print inequality rows as `lhs ≤ rhs`.
    pub fn lhs_display(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, &(v, c)) in self.terms.iter().enumerate() {
            if i == 0 {
                if c == 1 {
                    let _ = write!(s, "x{v}");
                } else if c == -1 {
                    let _ = write!(s, "-x{v}");
                } else {
                    let _ = write!(s, "{c}*x{v}");
                }
            } else if c >= 0 {
                if c == 1 {
                    let _ = write!(s, " + x{v}");
                } else {
                    let _ = write!(s, " + {c}*x{v}");
                }
            } else if c == -1 {
                let _ = write!(s, " - x{v}");
            } else {
                let _ = write!(s, " - {}*x{v}", -c);
            }
        }
        if self.terms.is_empty() {
            s.push('0');
        }
        s
    }
}

impl fmt::Display for LinEq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.lhs_display(), self.rhs)
    }
}

/// A system of linear equations over `n_vars` variables.
///
/// # Examples
///
/// ```
/// use choco_mathkit::{LinEq, LinSystem};
///
/// // x1 - x3 = 0 ; x1 + x2 + x4 = 1  (the paper's running example, 0-indexed)
/// let mut sys = LinSystem::new(4);
/// sys.push(LinEq::new([(0, 1), (2, -1)], 0));
/// sys.push(LinEq::new([(0, 1), (1, 1), (3, 1)], 1));
///
/// let feasible = sys.enumerate_binary_solutions(100);
/// assert!(feasible.contains(&0b0101)); // x = {1,0,1,0}: the paper's optimum
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LinSystem {
    n_vars: usize,
    eqs: Vec<LinEq>,
    /// Inequality rows, each meaning `Σ coeff·x_var ≤ rhs`.
    ineqs: Vec<LinEq>,
}

impl LinSystem {
    /// Creates an empty system over `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        assert!(n_vars <= 63, "at most 63 variables are supported");
        LinSystem {
            n_vars,
            eqs: Vec::new(),
            ineqs: Vec::new(),
        }
    }

    /// Adds one equation.
    ///
    /// # Panics
    ///
    /// Panics if the equation references a variable `>= n_vars`.
    pub fn push(&mut self, eq: LinEq) {
        for &(v, _) in &eq.terms {
            assert!(v < self.n_vars, "equation references unknown variable x{v}");
        }
        self.eqs.push(eq);
    }

    /// Adds one inequality row `Σ coeff·x_var ≤ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the row references a variable `>= n_vars`.
    pub fn push_le(&mut self, row: LinEq) {
        for &(v, _) in &row.terms {
            assert!(
                v < self.n_vars,
                "inequality references unknown variable x{v}"
            );
        }
        self.ineqs.push(row);
    }

    /// Number of variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The equations.
    #[inline]
    pub fn eqs(&self) -> &[LinEq] {
        &self.eqs
    }

    /// The inequality rows (each meaning `lhs ≤ rhs`).
    #[inline]
    pub fn ineqs(&self) -> &[LinEq] {
        &self.ineqs
    }

    /// `true` if the system carries at least one inequality row.
    #[inline]
    pub fn has_inequalities(&self) -> bool {
        !self.ineqs.is_empty()
    }

    /// Number of equations (inequality rows are counted by [`Self::ineqs`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.eqs.len()
    }

    /// `true` if there are no equations (there may still be inequality rows).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.eqs.is_empty()
    }

    /// Are all equations and inequality rows satisfied by a packed binary
    /// assignment?
    pub fn is_satisfied_bits(&self, bits: u64) -> bool {
        self.eqs.iter().all(|eq| eq.is_satisfied_bits(bits))
            && self.ineqs.iter().all(|row| row.residual_bits(bits) <= 0)
    }

    /// Sum of squared residuals (the penalty term `‖Cx − c‖²`); inequality
    /// rows contribute `max(0, lhs − rhs)²` (only overshoot is penalized).
    pub fn penalty_bits(&self, bits: u64) -> i64 {
        let eq_pen: i64 = self
            .eqs
            .iter()
            .map(|eq| {
                let r = eq.residual_bits(bits);
                r * r
            })
            .sum();
        let ineq_pen: i64 = self
            .ineqs
            .iter()
            .map(|row| {
                let over = row.residual_bits(bits).max(0);
                over * over
            })
            .sum();
        eq_pen + ineq_pen
    }

    /// The dense coefficient matrix `C` (rows = equations; inequality rows
    /// are excluded — the kernel machinery works on equalities only).
    pub fn dense_matrix(&self) -> Vec<Vec<i64>> {
        self.eqs
            .iter()
            .map(|eq| {
                let mut row = vec![0i64; self.n_vars];
                for &(v, c) in &eq.terms {
                    row[v] = c;
                }
                row
            })
            .collect()
    }

    /// Exact rank of `C` over `ℚ`.
    pub fn rank(&self) -> usize {
        if self.eqs.is_empty() {
            0
        } else {
            rank(&self.dense_matrix())
        }
    }

    /// Enumerates binary solutions of `C x = c`, up to `cap` results.
    ///
    /// DFS over variables with per-equation residual-interval pruning:
    /// a partial assignment is abandoned as soon as the remaining variables
    /// cannot possibly bring some equation's residual back to zero.
    pub fn enumerate_binary_solutions(&self, cap: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.dfs_binary(cap, &mut out);
        out
    }

    /// The first binary solution found, if any (used for state preparation).
    pub fn first_binary_solution(&self) -> Option<u64> {
        let mut out = Vec::new();
        self.dfs_binary(1, &mut out);
        out.into_iter().next()
    }

    fn dfs_binary(&self, cap: usize, out: &mut Vec<u64>) {
        if cap == 0 {
            return;
        }
        let n = self.n_vars;
        // Rows: equalities first, then inequality rows (`lhs ≤ rhs`).
        let n_eq = self.eqs.len();
        let rows: Vec<&LinEq> = self.eqs.iter().chain(self.ineqs.iter()).collect();
        let m = rows.len();
        let mut coeff = vec![vec![0i64; n]; m];
        for (e, row) in rows.iter().enumerate() {
            for &(v, c) in &row.terms {
                coeff[e][v] = c;
            }
        }
        // Suffix bounds: contribution of variables i..n to row e.
        let mut suf_min = vec![vec![0i64; m]; n + 1];
        let mut suf_max = vec![vec![0i64; m]; n + 1];
        for i in (0..n).rev() {
            for e in 0..m {
                let c = coeff[e][i];
                suf_min[i][e] = suf_min[i + 1][e] + c.min(0);
                suf_max[i][e] = suf_max[i + 1][e] + c.max(0);
            }
        }
        let mut residual: Vec<i64> = rows.iter().map(|row| row.rhs).collect();
        let mut bits = 0u64;
        self.dfs_binary_rec(
            0,
            n_eq,
            &coeff,
            &suf_min,
            &suf_max,
            &mut residual,
            &mut bits,
            cap,
            out,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_binary_rec(
        &self,
        i: usize,
        n_eq: usize,
        coeff: &[Vec<i64>],
        suf_min: &[Vec<i64>],
        suf_max: &[Vec<i64>],
        residual: &mut Vec<i64>,
        bits: &mut u64,
        cap: usize,
        out: &mut Vec<u64>,
    ) {
        if out.len() >= cap {
            return;
        }
        let m = coeff.len();
        if i == self.n_vars {
            let eq_ok = residual[..n_eq].iter().all(|&r| r == 0);
            let ineq_ok = residual[n_eq..].iter().all(|&r| r >= 0);
            if eq_ok && ineq_ok {
                out.push(*bits);
            }
            return;
        }
        // Prune: remaining contributions must be able to cover the residual.
        // Equality rows need the residual to be reachable exactly; inequality
        // rows only need the suffix to be able to stay at or below it.
        for e in 0..m {
            if residual[e] < suf_min[i][e] || (e < n_eq && residual[e] > suf_max[i][e]) {
                return;
            }
        }
        for val in [0i64, 1] {
            if val == 1 {
                for e in 0..m {
                    residual[e] -= coeff[e][i];
                }
                *bits |= 1 << i;
            }
            self.dfs_binary_rec(
                i + 1,
                n_eq,
                coeff,
                suf_min,
                suf_max,
                residual,
                bits,
                cap,
                out,
            );
            if val == 1 {
                for e in 0..m {
                    residual[e] += coeff[e][i];
                }
                *bits &= !(1 << i);
            }
        }
    }

    /// Enumerates canonical ternary kernel vectors: `u ∈ {-1,0,1}^n`,
    /// `C u = 0`, `u ≠ 0`, first non-zero entry `+1` (which also removes the
    /// `u ↔ -u` duplicates — `Hc(u) = Hc(-u)`). At most `cap` results.
    ///
    /// Only the equality rows participate: inequality rows are absorbed by
    /// slack registers at the driver layer, whose shifts follow from these
    /// same kernel directions.
    pub fn enumerate_ternary_kernel(&self, cap: usize) -> Vec<Vec<i8>> {
        let n = self.n_vars;
        let m = self.eqs.len();
        let coeff = self.dense_matrix();
        let mut suf_abs = vec![vec![0i64; m]; n + 1];
        for i in (0..n).rev() {
            for e in 0..m {
                suf_abs[i][e] = suf_abs[i + 1][e] + coeff[e][i].abs();
            }
        }
        let mut out = Vec::new();
        let mut residual = vec![0i64; m];
        let mut u = vec![0i8; n];
        self.dfs_ternary_rec(
            0,
            false,
            &coeff,
            &suf_abs,
            &mut residual,
            &mut u,
            cap,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_ternary_rec(
        &self,
        i: usize,
        signed: bool,
        coeff: &[Vec<i64>],
        suf_abs: &[Vec<i64>],
        residual: &mut Vec<i64>,
        u: &mut Vec<i8>,
        cap: usize,
        out: &mut Vec<Vec<i8>>,
    ) {
        if out.len() >= cap {
            return;
        }
        let m = self.eqs.len();
        if i == self.n_vars {
            if signed && residual.iter().all(|&r| r == 0) {
                out.push(u.clone());
            }
            return;
        }
        for e in 0..m {
            if residual[e].abs() > suf_abs[i][e] {
                return;
            }
        }
        // Until the first non-zero entry, only {0, +1} keeps `u` canonical.
        let domain: &[i8] = if signed { &[0, 1, -1] } else { &[0, 1] };
        for &val in domain {
            u[i] = val;
            if val != 0 {
                for e in 0..m {
                    residual[e] += coeff[e][i] * val as i64;
                }
            }
            self.dfs_ternary_rec(
                i + 1,
                signed || val != 0,
                coeff,
                suf_abs,
                residual,
                u,
                cap,
                out,
            );
            if val != 0 {
                for e in 0..m {
                    residual[e] -= coeff[e][i] * val as i64;
                }
            }
            u[i] = 0;
        }
    }
}

/// How [`ternary_kernel_basis`] / [`integer_kernel_basis`] obtained the basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelBasisMethod {
    /// Gaussian elimination produced one-hot free-variable vectors whose
    /// entries were already in `{-1,0,1}` (the common case for FLP/GCP/KPP
    /// encodings; matches the paper's Fig. 3 example).
    Gaussian,
    /// Elimination left `{-1,0,1}`, so small-support kernel vectors were
    /// enumerated and greedily selected until they spanned the kernel.
    GreedyEnumeration,
    /// No ternary spanning set exists (or enumeration could not find one):
    /// the rational kernel was scaled to primitive integer vectors and
    /// pairwise size-reduced (LLL-style) to keep coefficients small.
    LatticeReduced,
}

/// A set of ternary vectors spanning the kernel of `C`, plus how it was found.
#[derive(Clone, Debug)]
pub struct TernaryKernelBasis {
    /// The basis vectors (canonical sign: first non-zero entry `+1`).
    pub vectors: Vec<Vec<i8>>,
    /// Dimension of the kernel (`n − rank(C)`).
    pub kernel_dim: usize,
    /// Which strategy produced the basis.
    pub method: KernelBasisMethod,
}

/// Errors from [`ternary_kernel_basis`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelBasisError {
    /// Even exhaustive enumeration (up to the cap) could not span the kernel
    /// with `{-1,0,1}` vectors.
    NotSpannable {
        /// Dimension reached by the greedy selection.
        reached: usize,
        /// Required kernel dimension.
        required: usize,
    },
}

impl fmt::Display for KernelBasisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelBasisError::NotSpannable { reached, required } => write!(
                f,
                "ternary vectors span only {reached} of the {required} kernel dimensions"
            ),
        }
    }
}

impl std::error::Error for KernelBasisError {}

/// Cap on DFS enumeration inside [`ternary_kernel_basis`]'s fallback path.
const KERNEL_ENUM_CAP: usize = 200_000;

/// Computes a `{-1,0,1}` basis of the kernel of `C` — the Δ set that defines
/// the commute driver Hamiltonian (Eq. (5) of the paper).
///
/// Strategy: first try exact Gaussian elimination with one-hot free
/// variables (this reproduces the paper's example Δ exactly). If some basis
/// vector falls outside `{-1,0,1}`, fall back to enumerating ternary kernel
/// vectors ordered by support size and greedily selecting a spanning subset.
///
/// # Errors
///
/// Returns [`KernelBasisError::NotSpannable`] when no ternary spanning set
/// exists (possible for constraint matrices with large coefficients).
pub fn ternary_kernel_basis(system: &LinSystem) -> Result<TernaryKernelBasis, KernelBasisError> {
    let n = system.n_vars();
    let kernel_dim = n - system.rank();
    if kernel_dim == 0 {
        return Ok(TernaryKernelBasis {
            vectors: Vec::new(),
            kernel_dim: 0,
            method: KernelBasisMethod::Gaussian,
        });
    }
    if system.is_empty() {
        // No constraints: the driver directions are the unit vectors.
        let vectors = (0..n)
            .map(|i| {
                let mut v = vec![0i8; n];
                v[i] = 1;
                v
            })
            .collect();
        return Ok(TernaryKernelBasis {
            vectors,
            kernel_dim,
            method: KernelBasisMethod::Gaussian,
        });
    }

    let rational = kernel_basis(&system.dense_matrix());
    let mut vectors = Vec::with_capacity(rational.len());
    let mut all_ternary = true;
    'outer: for v in &rational {
        let mut iv = Vec::with_capacity(n);
        for r in v {
            if !r.is_integer() || r.numer().abs() > 1 {
                all_ternary = false;
                break 'outer;
            }
            iv.push(r.numer() as i8);
        }
        vectors.push(canonicalize_sign(iv));
    }
    if all_ternary && vectors.len() == kernel_dim {
        return Ok(TernaryKernelBasis {
            vectors,
            kernel_dim,
            method: KernelBasisMethod::Gaussian,
        });
    }

    // Fallback: enumerate and greedily span, smallest support first.
    let mut candidates = system.enumerate_ternary_kernel(KERNEL_ENUM_CAP);
    candidates.sort_by_key(|u| u.iter().filter(|&&x| x != 0).count());
    let mut tracker = SpanTracker::new();
    let mut chosen = Vec::new();
    for u in candidates {
        let ints: Vec<i64> = u.iter().map(|&x| x as i64).collect();
        if tracker.insert_ints(&ints) {
            chosen.push(u);
            if tracker.dim() == kernel_dim {
                return Ok(TernaryKernelBasis {
                    vectors: chosen,
                    kernel_dim,
                    method: KernelBasisMethod::GreedyEnumeration,
                });
            }
        }
    }
    Err(KernelBasisError::NotSpannable {
        reached: tracker.dim(),
        required: kernel_dim,
    })
}

/// A set of integer vectors spanning the kernel of `C`, plus how it was found.
///
/// Unlike [`TernaryKernelBasis`] the coefficients are not restricted to
/// `{-1,0,1}`: when no ternary spanning set exists the basis falls back to
/// primitive integer kernel vectors, pairwise size-reduced to keep the
/// coefficients (and hence the driver-term supports) small.
#[derive(Clone, Debug)]
pub struct IntegerKernelBasis {
    /// The basis vectors (canonical sign: first non-zero entry positive).
    pub vectors: Vec<Vec<i64>>,
    /// Dimension of the kernel (`n − rank(C)`).
    pub kernel_dim: usize,
    /// Which strategy produced the basis.
    pub method: KernelBasisMethod,
}

/// Computes an integer basis of the kernel of the *equality rows* of `C` —
/// the generalized Δ set for commute-driver synthesis.
///
/// Strategy, in order (so that every system with a ternary basis reproduces
/// [`ternary_kernel_basis`] exactly):
///
/// 1. Gaussian one-hot free-variable vectors, if already ternary.
/// 2. Greedy ternary enumeration spanning the kernel.
/// 3. Lattice-style fallback: scale each rational kernel vector to a
///    primitive integer vector, then pairwise size-reduce
///    (`u_i ← u_i − round(⟨u_i,u_j⟩/⟨u_j,u_j⟩)·u_j` until stable).
///
/// Step 3 always succeeds, so — unlike the ternary path — this function is
/// total: every consistent integer linear system gets a driver basis.
pub fn integer_kernel_basis(system: &LinSystem) -> IntegerKernelBasis {
    match ternary_kernel_basis(system) {
        Ok(ternary) => IntegerKernelBasis {
            vectors: ternary
                .vectors
                .iter()
                .map(|u| u.iter().map(|&x| x as i64).collect())
                .collect(),
            kernel_dim: ternary.kernel_dim,
            method: ternary.method,
        },
        Err(KernelBasisError::NotSpannable { required, .. }) => {
            let rational = kernel_basis(&system.dense_matrix());
            let mut vectors: Vec<Vec<i64>> =
                rational.iter().map(|v| integer_primitive(v)).collect();
            size_reduce(&mut vectors);
            vectors = vectors.into_iter().map(canonicalize_sign_ints).collect();
            // Deterministic ordering: small support first, then small norm,
            // then lexicographic.
            vectors.sort_by(|a, b| {
                let sa = a.iter().filter(|&&x| x != 0).count();
                let sb = b.iter().filter(|&&x| x != 0).count();
                let na: i64 = a.iter().map(|&x| x * x).sum();
                let nb: i64 = b.iter().map(|&x| x * x).sum();
                (sa, na, a).cmp(&(sb, nb, b))
            });
            IntegerKernelBasis {
                vectors,
                kernel_dim: required,
                method: KernelBasisMethod::LatticeReduced,
            }
        }
    }
}

/// Scales a rational vector to the shortest parallel integer vector
/// (multiply by the LCM of denominators, divide by the GCD of numerators).
fn integer_primitive(v: &[Rational]) -> Vec<i64> {
    let mut lcm: i128 = 1;
    for r in v {
        let d = r.denom();
        lcm = lcm / gcd_i128(lcm, d) * d;
    }
    let scaled: Vec<i128> = v.iter().map(|r| r.numer() * (lcm / r.denom())).collect();
    let g = scaled.iter().fold(0i128, |acc, &x| gcd_i128(acc, x));
    let g = if g == 0 { 1 } else { g };
    scaled
        .iter()
        .map(|&x| {
            let q = x / g;
            i64::try_from(q).expect("primitive kernel coefficient exceeds i64")
        })
        .collect()
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Pairwise LLL-style size reduction: repeatedly replace `u_i` by
/// `u_i − round(⟨u_i,u_j⟩/⟨u_j,u_j⟩)·u_j` while that shortens it. Each
/// replacement strictly decreases `‖u_i‖²`, so the loop terminates; a pass
/// cap guards against pathological inputs anyway.
fn size_reduce(vectors: &mut [Vec<i64>]) {
    const MAX_PASSES: usize = 64;
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for i in 0..vectors.len() {
            for j in 0..vectors.len() {
                if i == j {
                    continue;
                }
                let dot: i64 = vectors[i]
                    .iter()
                    .zip(vectors[j].iter())
                    .map(|(&a, &b)| a * b)
                    .sum();
                let norm_sq: i64 = vectors[j].iter().map(|&x| x * x).sum();
                if norm_sq == 0 {
                    continue;
                }
                // Nearest integer to dot/norm_sq (round half up; the explicit
                // norm check below keeps the reduction strictly decreasing).
                let mu = (2 * dot + norm_sq).div_euclid(2 * norm_sq);
                if mu != 0 {
                    let old_norm: i64 = vectors[i].iter().map(|&x| x * x).sum();
                    let candidate: Vec<i64> = vectors[i]
                        .iter()
                        .zip(vectors[j].iter())
                        .map(|(&a, &b)| a - mu * b)
                        .collect();
                    let new_norm: i64 = candidate.iter().map(|&x| x * x).sum();
                    if new_norm < old_norm {
                        vectors[i] = candidate;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Flips an integer vector so its first non-zero entry is positive.
fn canonicalize_sign_ints(mut u: Vec<i64>) -> Vec<i64> {
    if let Some(&first) = u.iter().find(|&&x| x != 0) {
        if first < 0 {
            for x in u.iter_mut() {
                *x = -*x;
            }
        }
    }
    u
}

/// Flips `u` so its first non-zero entry is `+1` (`Hc(u) = Hc(−u)`).
pub fn canonicalize_sign(mut u: Vec<i8>) -> Vec<i8> {
    if let Some(&first) = u.iter().find(|&&x| x != 0) {
        if first < 0 {
            for x in u.iter_mut() {
                *x = -*x;
            }
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example from the paper: x1 - x3 = 0, x1 + x2 + x4 = 1.
    fn paper_system() -> LinSystem {
        let mut sys = LinSystem::new(4);
        sys.push(LinEq::new([(0, 1), (2, -1)], 0));
        sys.push(LinEq::new([(0, 1), (1, 1), (3, 1)], 1));
        sys
    }

    #[test]
    fn lineq_merges_and_drops_terms() {
        let eq = LinEq::new([(2, 1), (0, 3), (2, -1), (1, 0)], 5);
        assert_eq!(eq.terms, vec![(0, 3)]);
        assert_eq!(eq.rhs, 5);
    }

    #[test]
    fn lineq_eval_and_display() {
        let eq = LinEq::new([(0, 1), (1, -2)], 1);
        assert_eq!(eq.lhs_bits(0b01), 1);
        assert_eq!(eq.lhs_bits(0b11), -1);
        assert!(eq.is_satisfied_bits(0b01));
        assert_eq!(format!("{eq}"), "x0 - 2*x1 = 1");
    }

    #[test]
    fn summation_format_detection() {
        assert!(LinEq::new([(0, 1), (1, 1)], 1).is_summation_format());
        assert!(LinEq::new([(0, -1), (1, -1)], -1).is_summation_format());
        assert!(!LinEq::new([(0, 1), (1, -1)], 0).is_summation_format());
        assert!(!LinEq::new([(0, 2)], 2).is_summation_format());
    }

    #[test]
    fn binary_enumeration_matches_exhaustive() {
        let sys = paper_system();
        let dfs: std::collections::BTreeSet<u64> =
            sys.enumerate_binary_solutions(1000).into_iter().collect();
        let brute: std::collections::BTreeSet<u64> =
            (0u64..16).filter(|&b| sys.is_satisfied_bits(b)).collect();
        assert_eq!(dfs, brute);
        assert!(!dfs.is_empty());
    }

    #[test]
    fn binary_enumeration_respects_cap() {
        let sys = LinSystem::new(6); // no constraints: 64 solutions
        assert_eq!(sys.enumerate_binary_solutions(10).len(), 10);
        assert_eq!(sys.enumerate_binary_solutions(100).len(), 64);
    }

    #[test]
    fn first_solution_is_feasible() {
        let sys = paper_system();
        let x = sys.first_binary_solution().expect("feasible");
        assert!(sys.is_satisfied_bits(x));
    }

    #[test]
    fn infeasible_system_has_no_solution() {
        let mut sys = LinSystem::new(2);
        sys.push(LinEq::new([(0, 1), (1, 1)], 5));
        assert!(sys.first_binary_solution().is_none());
        assert!(sys.enumerate_binary_solutions(10).is_empty());
    }

    #[test]
    fn ternary_kernel_solutions_annihilate() {
        let sys = paper_system();
        let kernel = sys.enumerate_ternary_kernel(1000);
        assert!(!kernel.is_empty());
        for u in &kernel {
            for eq in sys.eqs() {
                let dot: i64 = eq.terms.iter().map(|&(v, c)| c * u[v] as i64).sum();
                assert_eq!(dot, 0);
            }
            assert_eq!(*u.iter().find(|&&x| x != 0).unwrap(), 1, "canonical sign");
        }
    }

    #[test]
    fn ternary_kernel_counts_paper_example() {
        // Kernel dim = 2; ternary points in the kernel (canonical):
        // (1,-1,1,0), (0,-1,0,1)  [basis]  and (1,0,1,-1) [their sum].
        let sys = paper_system();
        let kernel = sys.enumerate_ternary_kernel(1000);
        assert_eq!(kernel.len(), 3);
        assert!(kernel.contains(&vec![1, -1, 1, 0]));
        // canonical form of the paper's u2 = (0,-1,0,1):
        assert!(kernel.contains(&vec![0, 1, 0, -1]));
        assert!(kernel.contains(&vec![1, 0, 1, -1]));
    }

    #[test]
    fn kernel_basis_reproduces_paper_delta() {
        let sys = paper_system();
        let basis = ternary_kernel_basis(&sys).expect("basis");
        assert_eq!(basis.kernel_dim, 2);
        assert_eq!(basis.method, KernelBasisMethod::Gaussian);
        // The paper's Δ up to the Hc(u)=Hc(-u) sign symmetry:
        // u1 = (-1,1,-1,0) ~ (1,-1,1,0) and u2 = (0,-1,0,1) ~ (0,1,0,-1).
        assert_eq!(basis.vectors[0], vec![1, -1, 1, 0]);
        assert_eq!(basis.vectors[1], vec![0, 1, 0, -1]);
    }

    #[test]
    fn kernel_basis_no_constraints_is_unit_vectors() {
        let sys = LinSystem::new(3);
        let basis = ternary_kernel_basis(&sys).expect("basis");
        assert_eq!(basis.kernel_dim, 3);
        assert_eq!(basis.vectors.len(), 3);
        assert_eq!(basis.vectors[0], vec![1, 0, 0]);
    }

    #[test]
    fn kernel_basis_full_rank_is_empty() {
        let mut sys = LinSystem::new(2);
        sys.push(LinEq::new([(0, 1)], 0));
        sys.push(LinEq::new([(1, 1)], 1));
        let basis = ternary_kernel_basis(&sys).expect("basis");
        assert_eq!(basis.kernel_dim, 0);
        assert!(basis.vectors.is_empty());
    }

    #[test]
    fn kernel_basis_greedy_fallback() {
        // x0 + x1 - 2*x2 = 0: Gaussian one-hot gives (2,0,1)-style vectors
        // outside {-1,0,1}; the spanning fallback must find e.g. (1,-1,0).
        let mut sys = LinSystem::new(3);
        sys.push(LinEq::new([(0, 1), (1, 1), (2, -2)], 0));
        let basis = ternary_kernel_basis(&sys).expect("basis");
        assert_eq!(basis.kernel_dim, 2);
        assert_eq!(basis.method, KernelBasisMethod::GreedyEnumeration);
        assert_eq!(basis.vectors.len(), 2);
        for u in &basis.vectors {
            let dot: i64 = u[0] as i64 + u[1] as i64 - 2 * u[2] as i64;
            assert_eq!(dot, 0);
        }
    }

    #[test]
    fn kernel_basis_unspannable_reports_error() {
        // x0 + 3*x1 = 0 over {-1,0,1} has only the zero solution, but the
        // kernel has dimension 1.
        let mut sys = LinSystem::new(2);
        sys.push(LinEq::new([(0, 1), (1, 3)], 0));
        let err = ternary_kernel_basis(&sys).unwrap_err();
        assert_eq!(
            err,
            KernelBasisError::NotSpannable {
                reached: 0,
                required: 1
            }
        );
    }

    #[test]
    fn canonicalize_flips_leading_negative() {
        assert_eq!(canonicalize_sign(vec![0, -1, 1]), vec![0, 1, -1]);
        assert_eq!(canonicalize_sign(vec![1, -1]), vec![1, -1]);
        assert_eq!(canonicalize_sign(vec![0, 0]), vec![0, 0]);
    }

    #[test]
    fn inequality_rows_gate_satisfaction_and_penalty() {
        // x0 + 2*x1 ≤ 2 over 3 vars (x2 free).
        let mut sys = LinSystem::new(3);
        sys.push_le(LinEq::new([(0, 1), (1, 2)], 2));
        assert!(sys.has_inequalities());
        assert!(sys.is_satisfied_bits(0b000));
        assert!(sys.is_satisfied_bits(0b010)); // x1=1: lhs 2 ≤ 2
        assert!(!sys.is_satisfied_bits(0b011)); // lhs 3 > 2
        assert_eq!(sys.penalty_bits(0b011), 1); // overshoot 1 → 1
        assert_eq!(sys.penalty_bits(0b010), 0); // slack is free
    }

    #[test]
    fn inequality_enumeration_matches_exhaustive() {
        // Mixed system: x0 + x1 + x2 = 2 and 2*x0 + 3*x1 ≤ 4.
        let mut sys = LinSystem::new(3);
        sys.push(LinEq::new([(0, 1), (1, 1), (2, 1)], 2));
        sys.push_le(LinEq::new([(0, 2), (1, 3)], 4));
        let dfs: std::collections::BTreeSet<u64> =
            sys.enumerate_binary_solutions(1000).into_iter().collect();
        let brute: std::collections::BTreeSet<u64> =
            (0u64..8).filter(|&b| sys.is_satisfied_bits(b)).collect();
        assert_eq!(dfs, brute);
        assert!(!dfs.is_empty());
    }

    #[test]
    fn inequality_only_system_keeps_full_kernel() {
        // Pure capacity row: the equality system is empty, so the driver
        // basis is the unit vectors (slack shifts absorb the row).
        let mut sys = LinSystem::new(3);
        sys.push_le(LinEq::new([(0, 2), (1, 3), (2, 4)], 5));
        let basis = ternary_kernel_basis(&sys).expect("basis");
        assert_eq!(basis.kernel_dim, 3);
        assert_eq!(basis.vectors.len(), 3);
    }

    #[test]
    fn lineq_lhs_bounds() {
        let eq = LinEq::new([(0, 2), (1, -3), (2, 4)], 0);
        assert_eq!(eq.min_lhs(), -3);
        assert_eq!(eq.max_lhs(), 6);
    }

    #[test]
    fn integer_kernel_matches_ternary_when_available() {
        let sys = paper_system();
        let basis = integer_kernel_basis(&sys);
        assert_eq!(basis.method, KernelBasisMethod::Gaussian);
        assert_eq!(basis.vectors, vec![vec![1, -1, 1, 0], vec![0, 1, 0, -1]]);
    }

    #[test]
    fn integer_kernel_lattice_fallback() {
        // x0 + 3*x1 = 0: no ternary spanning set; the lattice path must
        // produce the primitive direction (3, -1).
        let mut sys = LinSystem::new(2);
        sys.push(LinEq::new([(0, 1), (1, 3)], 0));
        let basis = integer_kernel_basis(&sys);
        assert_eq!(basis.method, KernelBasisMethod::LatticeReduced);
        assert_eq!(basis.kernel_dim, 1);
        assert_eq!(basis.vectors, vec![vec![3, -1]]);
    }

    #[test]
    fn integer_kernel_vectors_annihilate_and_span() {
        // 2*x0 + 3*x1 - 5*x2 + 7*x3 = 0 — general coefficients.
        let mut sys = LinSystem::new(4);
        sys.push(LinEq::new([(0, 2), (1, 3), (2, -5), (3, 7)], 0));
        let basis = integer_kernel_basis(&sys);
        assert_eq!(basis.vectors.len(), basis.kernel_dim);
        assert_eq!(basis.kernel_dim, 3);
        let mut tracker = SpanTracker::new();
        for u in &basis.vectors {
            let dot: i64 = 2 * u[0] + 3 * u[1] - 5 * u[2] + 7 * u[3];
            assert_eq!(dot, 0, "kernel vector {u:?} must annihilate the row");
            assert!(tracker.insert_ints(u), "basis vectors must be independent");
            let first = u.iter().find(|&&x| x != 0).unwrap();
            assert!(*first > 0, "canonical sign");
        }
    }

    #[test]
    fn size_reduction_shrinks_coefficients() {
        let mut vs = vec![vec![7, 0, 1], vec![5, 1, 0]];
        size_reduce(&mut vs);
        let max_norm: i64 = vs
            .iter()
            .map(|v| v.iter().map(|&x| x * x).sum())
            .max()
            .unwrap();
        assert!(max_norm < 50, "reduced basis should be shorter: {vs:?}");
    }

    #[test]
    fn penalty_counts_squared_residuals() {
        let sys = paper_system();
        // x = 0b0000: eq1 residual 0, eq2 residual -1 → penalty 1.
        assert_eq!(sys.penalty_bits(0), 1);
        // x = {1,1,1,1}: eq1 0, eq2 3-1=2 → 4.
        assert_eq!(sys.penalty_bits(0b1111), 4);
        assert_eq!(sys.penalty_bits(0b0101), 0);
    }
}
