//! # choco-mathkit
//!
//! Math foundations for the Choco-Q reproduction: complex arithmetic, dense
//! complex matrices with a matrix exponential, exact rational linear algebra,
//! integer linear systems with binary/ternary enumeration (the Δ machinery of
//! the paper's Eq. (5)), statistics helpers, and a deterministic PRNG for
//! instance generation.
//!
//! Everything here is self-contained: no external linear-algebra or
//! complex-number crates are used.
//!
//! ## Example: the paper's Δ derivation
//!
//! ```
//! use choco_mathkit::{LinEq, LinSystem, ternary_kernel_basis};
//!
//! // Constraints of the paper's running example (Fig. 2/3, 0-indexed):
//! //   x0 - x2 = 0
//! //   x0 + x1 + x3 = 1
//! let mut sys = LinSystem::new(4);
//! sys.push(LinEq::new([(0, 1), (2, -1)], 0));
//! sys.push(LinEq::new([(0, 1), (1, 1), (3, 1)], 1));
//!
//! // The paper's u1/u2 up to the Hc(u) = Hc(-u) sign symmetry:
//! let delta = ternary_kernel_basis(&sys).expect("ternary basis");
//! assert_eq!(delta.vectors, vec![vec![1, -1, 1, 0], vec![0, 1, 0, -1]]);
//! ```

#![warn(missing_docs)]

mod complex;
mod expm;
mod intlin;
mod matrix;
mod rational;
mod rng;
mod stats;

pub use complex::{c64, Complex64};
pub use expm::{expm, expm_hermitian};
pub use intlin::{
    canonicalize_sign, integer_kernel_basis, ternary_kernel_basis, IntegerKernelBasis,
    KernelBasisError, KernelBasisMethod, LinEq, LinSystem, TernaryKernelBasis,
};
pub use matrix::CMatrix;
pub use rational::{kernel_basis, rank, row_echelon, Rational, RowEchelon, SpanTracker};
pub use rng::SplitMix64;
pub use stats::{geometric_mean, mean, percentile, std_dev, OnlineStats};
