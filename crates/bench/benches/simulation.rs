//! Criterion bench: state-vector engine throughput — the quantum-execution
//! cost that dominates every solver's iteration loop (Fig. 11's `execute`
//! share).

use choco_qsim::{Circuit, PhasePoly, StateVector, UBlock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn layer_circuit(n: usize) -> Circuit {
    let mut poly = PhasePoly::new(n);
    for i in 0..n {
        poly.add_linear(i, 0.3 * i as f64);
        if i + 1 < n {
            poly.add_quadratic(i, i + 1, -0.2);
        }
    }
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.diag(Arc::new(poly), 0.4);
    // A serialized driver pass of n/2 three-qubit blocks.
    for k in 0..n / 2 {
        let mut u = vec![0i8; n];
        u[k] = 1;
        u[(k + 1) % n] = -1;
        u[(k + 2) % n] = 1;
        c.ublock(UBlock::from_u_with_angle(&u, 0.5));
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer");
    group.sample_size(20);
    for n in [10usize, 14, 18] {
        let circuit = layer_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| StateVector::run(std::hint::black_box(circuit)));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("sampling_10k_shots");
    group.sample_size(20);
    for n in [10usize, 16] {
        let circuit = layer_circuit(n);
        let state = StateVector::run(&circuit);
        group.bench_with_input(BenchmarkId::from_parameter(n), &state, |b, state| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| state.sample(10_000, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_sampling);
criterion_main!(benches);
