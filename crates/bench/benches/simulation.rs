//! Criterion bench: state-vector engine throughput — the quantum-execution
//! cost that dominates every solver's iteration loop (Fig. 11's `execute`
//! share).
//!
//! Three engines are measured on the same layer circuit so the fast-path
//! speedup is tracked against the retained scan-and-mask baseline:
//!
//! * `statevector_layer` — the production engine (strided subspace
//!   kernels, shape-specialized 2×2 arithmetic, threading per
//!   [`SimConfig`]),
//! * `statevector_layer_scalar` — the [`choco_qsim::oracle`] baseline that
//!   scans all `2^n` indices per gate,
//! * `statevector_layer_workspace` — the engine as the solvers drive it:
//!   a [`SimWorkspace`] reusing the amplitude buffer and cached diagonals
//!   across iterations (the per-optimizer-iteration cost).
//!
//! `bench_json` (in `src/bin`) runs the same circuits headlessly and
//! writes `BENCH_simulation.json` for machine-readable tracking.

use choco_bench::{
    choco_layer_circuit, choco_onehot_candidates, choco_onehot_stack, layer_circuit,
};
use choco_qsim::oracle::ScalarStateVector;
use choco_qsim::{EngineKind, SimConfig, SimWorkspace, SparseStateVector, StateVector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Dense vs sparse on the confined Choco-Q layer: the crossover group
/// behind `BENCH_simulation.json`'s `sparse_speedup_vs_dense` numbers.
fn bench_choco_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("choco_layer");
    group.sample_size(10);
    for n in [14usize, 18, 22] {
        let circuit = choco_layer_circuit(n);
        group.bench_with_input(BenchmarkId::new("dense", n), &circuit, |b, circuit| {
            b.iter(|| StateVector::run(std::hint::black_box(circuit)));
        });
        group.bench_with_input(BenchmarkId::new("sparse", n), &circuit, |b, circuit| {
            b.iter(|| SparseStateVector::run(std::hint::black_box(circuit)));
        });
    }
    group.finish();
}

/// End-to-end optimizer-iteration cost: one warmed `SimWorkspace::run`
/// of a two-layer multi-one-hot Choco-Q stack per engine — the group
/// behind `BENCH_simulation.json`'s `compact_speedup_vs_sparse`.
fn bench_choco_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("choco_iteration");
    group.sample_size(10);
    for n in [14usize, 18] {
        let stack = choco_onehot_stack(n, 2);
        for (label, engine) in [
            ("dense", EngineKind::Dense),
            ("sparse", EngineKind::Sparse),
            ("compact", EngineKind::Compact),
        ] {
            let mut ws = SimWorkspace::new(SimConfig::default().with_engine(engine));
            ws.run(&stack); // warmup: allocate buffers, compile the plan
            group.bench_with_input(BenchmarkId::new(label, n), &stack, |b, stack| {
                b.iter(|| {
                    ws.run(std::hint::black_box(stack));
                });
            });
        }
    }
    group.finish();
}

/// Batched multi-angle replay: K candidates of the onehot stack in one
/// pass over the cached plan. One bench "op" is the whole K-wide batch,
/// so divide by K for the per-candidate cost `bench_json` reports in
/// `BENCH_simulation.json`'s `batched_speedup_per_candidate`.
fn bench_choco_iteration_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("choco_iteration_batched");
    group.sample_size(10);
    for n in [14usize, 18] {
        let candidates = choco_onehot_candidates(n, 2, 16);
        for k in [1usize, 4, 8, 16] {
            let mut ws = SimWorkspace::new(SimConfig::default().with_engine(EngineKind::Compact));
            ws.run_batch(&candidates[..k]).expect("compact batch"); // warmup
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n),
                &candidates,
                |b, cs| {
                    b.iter(|| {
                        std::hint::black_box(ws.run_batch(&cs[..k]));
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer");
    group.sample_size(20);
    for n in [10usize, 14, 18] {
        let circuit = layer_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| StateVector::run(std::hint::black_box(circuit)));
        });
    }
    group.finish();
}

fn bench_statevector_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer_scalar");
    group.sample_size(20);
    for n in [10usize, 14, 18] {
        let circuit = layer_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| ScalarStateVector::run(std::hint::black_box(circuit)));
        });
    }
    group.finish();
}

fn bench_statevector_workspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer_workspace");
    group.sample_size(20);
    for n in [10usize, 14, 18] {
        let circuit = layer_circuit(n);
        let mut ws = SimWorkspace::new(SimConfig::default());
        ws.run(&circuit); // warmup: allocate the buffer, expand the diagonal
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| {
                ws.run(std::hint::black_box(circuit));
            });
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("sampling_10k_shots");
    group.sample_size(20);
    for n in [10usize, 16] {
        let circuit = layer_circuit(n);
        let state = StateVector::run(&circuit);
        group.bench_with_input(BenchmarkId::from_parameter(n), &state, |b, state| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| state.sample(10_000, &mut rng));
        });
        // The workspace path amortizes the prefix-table build across calls.
        let mut ws = SimWorkspace::new(SimConfig::default());
        ws.run(&circuit);
        let mut rng = StdRng::seed_from_u64(7);
        ws.sample(1, &mut rng); // build the table once
        group.bench_function(format!("cached/{n}"), |b| {
            b.iter(|| ws.sample(10_000, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_statevector_scalar,
    bench_statevector_workspace,
    bench_choco_layer,
    bench_choco_iteration,
    bench_choco_iteration_batched,
    bench_sampling
);
criterion_main!(benches);
