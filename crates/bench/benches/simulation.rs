//! Criterion bench: state-vector engine throughput — the quantum-execution
//! cost that dominates every solver's iteration loop (Fig. 11's `execute`
//! share).
//!
//! Three engines are measured on the same layer circuit so the fast-path
//! speedup is tracked against the retained scan-and-mask baseline:
//!
//! * `statevector_layer` — the production engine (strided subspace
//!   kernels, shape-specialized 2×2 arithmetic, threading per
//!   [`SimConfig`]),
//! * `statevector_layer_scalar` — the [`choco_qsim::oracle`] baseline that
//!   scans all `2^n` indices per gate,
//! * `statevector_layer_workspace` — the engine as the solvers drive it:
//!   a [`SimWorkspace`] reusing the amplitude buffer and cached diagonals
//!   across iterations (the per-optimizer-iteration cost).
//!
//! `bench_json` (in `src/bin`) runs the same circuits headlessly and
//! writes `BENCH_simulation.json` for machine-readable tracking.

use choco_qsim::oracle::ScalarStateVector;
use choco_qsim::{Circuit, PhasePoly, SimConfig, SimWorkspace, StateVector, UBlock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn layer_circuit(n: usize) -> Circuit {
    let mut poly = PhasePoly::new(n);
    for i in 0..n {
        poly.add_linear(i, 0.3 * i as f64);
        if i + 1 < n {
            poly.add_quadratic(i, i + 1, -0.2);
        }
    }
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.diag(Arc::new(poly), 0.4);
    // A serialized driver pass of n/2 three-qubit blocks.
    for k in 0..n / 2 {
        let mut u = vec![0i8; n];
        u[k] = 1;
        u[(k + 1) % n] = -1;
        u[(k + 2) % n] = 1;
        c.ublock(UBlock::from_u_with_angle(&u, 0.5));
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer");
    group.sample_size(20);
    for n in [10usize, 14, 18] {
        let circuit = layer_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| StateVector::run(std::hint::black_box(circuit)));
        });
    }
    group.finish();
}

fn bench_statevector_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer_scalar");
    group.sample_size(20);
    for n in [10usize, 14, 18] {
        let circuit = layer_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| ScalarStateVector::run(std::hint::black_box(circuit)));
        });
    }
    group.finish();
}

fn bench_statevector_workspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer_workspace");
    group.sample_size(20);
    for n in [10usize, 14, 18] {
        let circuit = layer_circuit(n);
        let mut ws = SimWorkspace::new(SimConfig::default());
        ws.run(&circuit); // warmup: allocate the buffer, expand the diagonal
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| {
                ws.run(std::hint::black_box(circuit));
            });
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("sampling_10k_shots");
    group.sample_size(20);
    for n in [10usize, 16] {
        let circuit = layer_circuit(n);
        let state = StateVector::run(&circuit);
        group.bench_with_input(BenchmarkId::from_parameter(n), &state, |b, state| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| state.sample(10_000, &mut rng));
        });
        // The workspace path amortizes the prefix-table build across calls.
        let mut ws = SimWorkspace::new(SimConfig::default());
        ws.run(&circuit);
        let mut rng = StdRng::seed_from_u64(7);
        ws.sample(1, &mut rng); // build the table once
        group.bench_function(format!("cached/{n}"), |b| {
            b.iter(|| ws.sample(10_000, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_statevector_scalar,
    bench_statevector_workspace,
    bench_sampling
);
criterion_main!(benches);
