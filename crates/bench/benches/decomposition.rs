//! Criterion bench: Hamiltonian decomposition cost (the timing component
//! of Figure 12) — Lemma-2 lowering vs the Trotter + two-level-synthesis
//! baseline.

use choco_core::{lemma2_stats, trotter_decompose, CommuteDriver, TrotterConfig};
use choco_mathkit::{LinEq, LinSystem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn ring_driver(n: usize) -> CommuteDriver {
    let mut sys = LinSystem::new(n);
    sys.push(LinEq::new((0..n).map(|i| (i, 1i64)), 1));
    CommuteDriver::build(&sys).expect("driver")
}

fn bench_lemma2(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma2_lowering");
    group.sample_size(20);
    for n in [4usize, 8, 12, 16] {
        let driver = ring_driver(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &driver, |b, driver| {
            b.iter(|| lemma2_stats(std::hint::black_box(driver), 0.7));
        });
    }
    group.finish();
}

fn bench_trotter(c: &mut Criterion) {
    let mut group = c.benchmark_group("trotter_decomposition");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    let config = TrotterConfig {
        slices: 16,
        timeout: Duration::from_secs(120),
    };
    for n in [2usize, 4, 6] {
        let driver = ring_driver(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &driver, |b, driver| {
            b.iter(|| trotter_decompose(std::hint::black_box(driver), 0.7, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lemma2, bench_trotter);
criterion_main!(benches);
