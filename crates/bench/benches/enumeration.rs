//! Criterion bench: the classical compilation primitives — feasibility
//! enumeration and ternary-kernel (Δ) construction. These are Choco-Q's
//! `compile` share in Figure 11(b).

use choco_mathkit::ternary_kernel_basis;
use choco_problems::instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_feasible_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasible_enumeration");
    group.sample_size(20);
    for id in ["F2", "G2", "K3"] {
        let problem = instance(id, 1);
        group.bench_with_input(BenchmarkId::from_parameter(id), &problem, |b, p| {
            b.iter(|| p.feasible_solutions(std::hint::black_box(100_000)));
        });
    }
    group.finish();
}

fn bench_kernel_basis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ternary_kernel_basis");
    group.sample_size(20);
    for id in ["F2", "G2", "K3", "G3"] {
        let problem = instance(id, 1);
        let constraints = problem.constraints().clone();
        group.bench_with_input(BenchmarkId::from_parameter(id), &constraints, |b, sys| {
            b.iter(|| ternary_kernel_basis(std::hint::black_box(sys)).expect("basis"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasible_enumeration, bench_kernel_basis);
criterion_main!(benches);
