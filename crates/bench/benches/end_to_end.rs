//! Criterion bench: end-to-end solver latency on small benchmark classes —
//! the measured backbone of Table I / Figure 11 comparisons.

use choco_core::{ChocoQConfig, ChocoQSolver};
use choco_model::Solver;
use choco_problems::instance;
use choco_solvers::{CyclicQaoaSolver, PenaltyQaoaSolver, QaoaConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn fast_choco() -> ChocoQConfig {
    ChocoQConfig {
        max_iters: 30,
        restarts: 1,
        shots: 2_000,
        transpiled_stats: false,
        ..ChocoQConfig::default()
    }
}

fn fast_qaoa() -> QaoaConfig {
    QaoaConfig {
        layers: 3,
        max_iters: 30,
        shots: 2_000,
        transpiled_stats: false,
        ..QaoaConfig::default()
    }
}

fn bench_choco(c: &mut Criterion) {
    let mut group = c.benchmark_group("choco_q_solve");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for id in ["F1", "K1", "G1"] {
        let problem = instance(id, 1);
        group.bench_with_input(BenchmarkId::from_parameter(id), &problem, |b, p| {
            let solver = ChocoQSolver::new(fast_choco());
            b.iter(|| solver.solve(std::hint::black_box(p)).expect("solve"));
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_solve_F1");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    let problem = instance("F1", 1);
    group.bench_function("penalty", |b| {
        let solver = PenaltyQaoaSolver::new(fast_qaoa());
        b.iter(|| solver.solve(std::hint::black_box(&problem)).expect("solve"));
    });
    group.bench_function("cyclic", |b| {
        let solver = CyclicQaoaSolver::new(fast_qaoa());
        b.iter(|| solver.solve(std::hint::black_box(&problem)).expect("solve"));
    });
    group.finish();
}

criterion_group!(benches, bench_choco, bench_baselines);
criterion_main!(benches);
