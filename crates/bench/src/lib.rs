//! # choco-bench
//!
//! Performance measurement for the simulation engine: Criterion benches
//! under `benches/` and the headless `bench_json` binary that writes
//! `BENCH_simulation.json` for cross-PR tracking.
//!
//! The paper's tables and figures are **not** reproduced here any more —
//! they are experiment specs under `experiments/`, executed by the
//! `choco-runner` crate via `choco-cli run <spec>` (one engine instead of
//! one binary per figure; see `docs/reproducing.md` for the full
//! figure-to-spec map).

#![warn(missing_docs)]

/// Returns `true` when a bench harness should skip slow cases
/// (`--quick` argument or `CHOCO_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("CHOCO_QUICK").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_reads_env() {
        // The test binary is never invoked with --quick; the env var is
        // the observable lever.
        std::env::remove_var("CHOCO_QUICK");
        assert!(!quick_mode());
        std::env::set_var("CHOCO_QUICK", "1");
        assert!(quick_mode());
        std::env::remove_var("CHOCO_QUICK");
    }
}
