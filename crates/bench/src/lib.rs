//! # choco-bench
//!
//! Performance measurement for the simulation engine: Criterion benches
//! under `benches/` and the headless `bench_json` binary that writes
//! `BENCH_simulation.json` for cross-PR tracking.
//!
//! The paper's tables and figures are **not** reproduced here any more —
//! they are experiment specs under `experiments/`, executed by the
//! `choco-runner` crate via `choco-cli run <spec>` (one engine instead of
//! one binary per figure; see `docs/reproducing.md` for the full
//! figure-to-spec map).

#![warn(missing_docs)]

use choco_qsim::{Circuit, PhasePoly, UBlock};
use std::sync::Arc;

/// Returns `true` when a bench harness should skip slow cases
/// (`--quick` argument or `CHOCO_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("CHOCO_QUICK").is_some()
}

/// The objective polynomial both bench layers evolve: a nearest-neighbour
/// chain with per-variable linear terms.
fn bench_poly(n: usize) -> PhasePoly {
    let mut poly = PhasePoly::new(n);
    for i in 0..n {
        poly.add_linear(i, 0.3 * i as f64);
        if i + 1 < n {
            poly.add_quadratic(i, i + 1, -0.2);
        }
    }
    poly
}

/// The generic bench layer: a Hadamard wall, one diagonal evolution, and
/// `n/2` serialized three-qubit commute blocks. Register-filling by
/// design — the workload behind the `statevector_layer` groups. One
/// definition serves the Criterion benches and `bench_json`, so their
/// published numbers always describe the same circuit.
pub fn layer_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    finish_layer(c, n)
}

/// The same layer without the Hadamard wall: a feasible-subspace-confined
/// Choco-Q instance (basis load + diagonal + serialized commute blocks),
/// where the sparse engine's `O(|F|·poly)` cost crosses over the dense
/// engine's `O(2^(n-k))` strides — the workload behind the `choco_layer`
/// groups and `BENCH_simulation.json`'s `sparse_speedup_vs_dense`.
pub fn choco_layer_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.load_bits(0b101);
    finish_layer(c, n)
}

/// The whole-iteration bench workload: `layers` full Choco-Q layers
/// (diagonal cost evolution + serialized commute driver) on a
/// multi-one-hot instance — qubits in groups of four (one trailing
/// smaller group), each group one-hot, each layer chaining pair blocks
/// along every group. The feasible subspace has `|F| = Π group_size`
/// (512 at n=18, 2048 at n=22, 4096 at n=24) and the driver is *closed*
/// over it, exactly like a real multi-constraint Choco-Q circuit: the
/// workload behind the `choco_iteration` groups and
/// `BENCH_simulation.json`'s `compact_speedup_vs_sparse`.
pub fn choco_onehot_stack(n: usize, layers: usize) -> Circuit {
    choco_onehot_stack_with_angles(n, layers, 0.4, 0.5)
}

/// [`choco_onehot_stack`] with caller-chosen evolution angles: the gate
/// sequence (and therefore the compiled plan) is identical for any angle
/// pair, so K calls with distinct angles produce exactly the same-shape
/// candidate set a batched replay (`SimWorkspace::run_batch`) evaluates
/// in one pass — the workload behind the `choco_iteration_batched_k*`
/// groups.
pub fn choco_onehot_stack_with_angles(
    n: usize,
    layers: usize,
    diag_angle: f64,
    block_angle: f64,
) -> Circuit {
    onehot_stack_impl(n, layers, Arc::new(bench_poly(n)), diag_angle, block_angle)
}

/// Shared-poly body of the onehot stack. Batch candidates must pass
/// clones of **one** `Arc` — the compact plan's shape key ties diagonal
/// gates to the polynomial instance, so per-lane allocations would make
/// every lane a distinct shape and the batch would decline.
fn onehot_stack_impl(
    n: usize,
    layers: usize,
    poly: Arc<PhasePoly>,
    diag_angle: f64,
    block_angle: f64,
) -> Circuit {
    assert!(n >= 2, "need at least one one-hot pair");
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut q = 0;
    while q + 4 <= n {
        groups.push((q, 4));
        q += 4;
    }
    if n - q >= 2 {
        groups.push((q, n - q));
    }
    let mut c = Circuit::new(n);
    let init = groups.iter().fold(0u64, |m, &(s, _)| m | (1 << s));
    c.load_bits(init);
    for _ in 0..layers {
        c.diag(poly.clone(), diag_angle);
        for &(s, w) in &groups {
            for j in 0..w - 1 {
                let mut u = vec![0i8; n];
                u[s + j] = 1;
                u[s + j + 1] = -1;
                c.ublock(UBlock::from_u_with_angle(&u, block_angle));
            }
        }
    }
    c
}

/// The K-lane candidate set for the batched bench groups: one
/// [`choco_onehot_stack_with_angles`] circuit per lane, angles varied per
/// lane so no two candidates are trivially identical.
pub fn choco_onehot_candidates(n: usize, layers: usize, k: usize) -> Vec<Circuit> {
    let poly = Arc::new(bench_poly(n));
    (0..k)
        .map(|lane| {
            onehot_stack_impl(
                n,
                layers,
                poly.clone(),
                0.4 + 0.013 * lane as f64,
                0.5 - 0.009 * lane as f64,
            )
        })
        .collect()
}

fn finish_layer(mut c: Circuit, n: usize) -> Circuit {
    c.diag(Arc::new(bench_poly(n)), 0.4);
    for k in 0..n / 2 {
        let mut u = vec![0i8; n];
        u[k] = 1;
        u[(k + 1) % n] = -1;
        u[(k + 2) % n] = 1;
        c.ublock(UBlock::from_u_with_angle(&u, 0.5));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onehot_stack_is_confined_and_closed() {
        use choco_qsim::SparseStateVector;
        // |F| = 4^2 at n = 8; a second layer must not grow support (the
        // driver is closed over the feasible subspace).
        let one = SparseStateVector::run(&choco_onehot_stack(8, 1));
        let two = SparseStateVector::run(&choco_onehot_stack(8, 2));
        assert_eq!(one.occupancy(), 16);
        assert_eq!(two.occupancy(), 16);
        // Trailing sub-4 group: n = 10 adds a one-hot pair.
        let odd = SparseStateVector::run(&choco_onehot_stack(10, 1));
        assert_eq!(odd.occupancy(), 32);
    }

    #[test]
    fn quick_mode_reads_env() {
        // The test binary is never invoked with --quick; the env var is
        // the observable lever.
        std::env::remove_var("CHOCO_QUICK");
        assert!(!quick_mode());
        std::env::set_var("CHOCO_QUICK", "1");
        assert!(quick_mode());
        std::env::remove_var("CHOCO_QUICK");
    }
}
