//! # choco-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`cargo run --release -p choco-bench --bin <name>`), plus Criterion
//! benches under `benches/`.
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table I — design comparison on a 15-qubit GCP |
//! | `table2` | Table II — 12 benchmarks × 4 solvers |
//! | `fig07_layers` | Fig. 7 — success rate vs #layers |
//! | `fig08_constraints` | Fig. 8 — success/depth vs #constraints |
//! | `fig09_convergence` | Fig. 9 — convergence curves + parallelism |
//! | `fig10_hardware` | Fig. 10 — success on the three IBM devices |
//! | `fig11_latency` | Fig. 11 — end-to-end latency + breakdown |
//! | `fig12_decomposition` | Fig. 12 — Trotter vs Choco-Q decomposition |
//! | `fig13_elimination` | Fig. 13 — variable elimination sweep |
//! | `fig14_ablation` | Fig. 14 — Opt1/Opt2/Opt3 ablation |
//!
//! Every binary accepts `--quick` (or env `CHOCO_QUICK=1`) to skip the
//! slowest cases; outputs print our measured values in the paper's row
//! format (paper-vs-measured commentary lives in `EXPERIMENTS.md`).

#![warn(missing_docs)]

use choco_core::ChocoQConfig;
use choco_model::{solve_exact, Metrics, Optimum, Problem, SolveOutcome, Solver};
use choco_solvers::QaoaConfig;

/// Returns `true` when the harness should skip slow cases
/// (`--quick` argument or `CHOCO_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("CHOCO_QUICK").is_some()
}

/// Budget-scaled Choco-Q configuration: big registers get fewer restarts
/// and iterations so the sweep stays CPU-feasible.
pub fn scaled_choco(n_vars: usize) -> ChocoQConfig {
    let base = ChocoQConfig::default();
    match n_vars {
        0..=12 => ChocoQConfig {
            max_iters: 100,
            ..base
        },
        13..=16 => ChocoQConfig {
            max_iters: 120,
            restarts: 6,
            ..base
        },
        17..=19 => ChocoQConfig {
            max_iters: 60,
            restarts: 4,
            shots: 4_096,
            ..base
        },
        _ => ChocoQConfig {
            max_iters: 25,
            restarts: 1,
            shots: 2_048,
            transpiled_stats: true,
            ..base
        },
    }
}

/// Budget-scaled baseline configuration (the paper runs the baselines with
/// 7 layers; iteration budget shrinks with register size).
pub fn scaled_qaoa(n_vars: usize) -> QaoaConfig {
    let base = QaoaConfig::default();
    match n_vars {
        0..=12 => base,
        13..=16 => QaoaConfig {
            max_iters: 60,
            ..base
        },
        17..=19 => QaoaConfig {
            max_iters: 40,
            shots: 4_096,
            ..base
        },
        _ => QaoaConfig {
            max_iters: 15,
            shots: 2_048,
            ..base
        },
    }
}

/// One solver's result on one case.
pub struct SolverRun {
    /// Solver name.
    pub name: &'static str,
    /// The outcome, if the solver could encode the problem.
    pub outcome: Option<SolveOutcome>,
    /// Metrics (None when the solver failed).
    pub metrics: Option<Metrics>,
    /// Failure message, when any.
    pub error: Option<String>,
}

/// Runs the four designs of the paper (penalty, cyclic, HEA, Choco-Q) on a
/// problem with budget-scaled configs, in Table II column order.
pub fn run_all_solvers(problem: &Problem, optimum: &Optimum) -> Vec<SolverRun> {
    let n = problem.n_vars();
    let penalty = choco_solvers::PenaltyQaoaSolver::new(scaled_qaoa(n));
    let cyclic = choco_solvers::CyclicQaoaSolver::new(scaled_qaoa(n));
    let hea = choco_solvers::HeaSolver::new(scaled_qaoa(n));
    let choco = choco_core::ChocoQSolver::new(scaled_choco(n));
    let solvers: Vec<(&'static str, &dyn Solver)> = vec![
        ("penalty", &penalty),
        ("cyclic", &cyclic),
        ("hea", &hea),
        ("choco-q", &choco),
    ];
    solvers
        .into_iter()
        .map(|(name, solver)| match solver.solve(problem) {
            Ok(outcome) => {
                let metrics = outcome.metrics_with(problem, optimum);
                SolverRun {
                    name,
                    outcome: Some(outcome),
                    metrics: Some(metrics),
                    error: None,
                }
            }
            Err(e) => SolverRun {
                name,
                outcome: None,
                metrics: None,
                error: Some(e.to_string()),
            },
        })
        .collect()
}

/// Exact optimum with a readable panic on failure (bench-only contexts).
pub fn expect_optimum(problem: &Problem) -> Optimum {
    solve_exact(problem).unwrap_or_else(|e| panic!("{}: {e}", problem.name()))
}

/// Formats a rate as the paper does: percentage or `✗` when (numerically)
/// zero.
pub fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        None => "err".to_string(),
        Some(r) if r < 5e-5 => "✗".to_string(),
        Some(r) => format!("{:.2}", r * 100.0),
    }
}

/// Simple fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table and prints the header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Table {
        let t = Table {
            widths: widths.to_vec(),
        };
        t.row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        t.rule();
        t
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (cell, &w) in cells.iter().zip(self.widths.iter()) {
            line.push_str(&format!("{cell:>w$}  "));
        }
        println!("{}", line.trim_end());
    }

    /// Prints a horizontal rule.
    pub fn rule(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + 2 * self.widths.len();
        println!("{}", "-".repeat(total));
    }
}

/// Formats a duration in seconds with 3 decimals.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_problems::instance;

    #[test]
    fn scaled_configs_shrink_with_size() {
        assert!(scaled_choco(8).max_iters > scaled_choco(20).max_iters);
        assert!(scaled_qaoa(8).max_iters > scaled_qaoa(20).max_iters);
    }

    #[test]
    fn fmt_rate_matches_paper_convention() {
        assert_eq!(fmt_rate(Some(0.0)), "✗");
        assert_eq!(fmt_rate(Some(0.671)), "67.10");
        assert_eq!(fmt_rate(None), "err");
    }

    #[test]
    fn run_all_solvers_produces_four_rows() {
        let p = instance("F1", 1);
        let opt = expect_optimum(&p);
        let runs = run_all_solvers(&p, &opt);
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[3].name, "choco-q");
        let m = runs[3].metrics.as_ref().expect("choco runs");
        assert!((m.in_constraints_rate - 1.0).abs() < 1e-9);
    }
}
