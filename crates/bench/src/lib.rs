//! # choco-bench
//!
//! Performance measurement for the simulation engine: Criterion benches
//! under `benches/` and the headless `bench_json` binary that writes
//! `BENCH_simulation.json` for cross-PR tracking.
//!
//! The paper's tables and figures are **not** reproduced here any more —
//! they are experiment specs under `experiments/`, executed by the
//! `choco-runner` crate via `choco-cli run <spec>` (one engine instead of
//! one binary per figure; see `docs/reproducing.md` for the full
//! figure-to-spec map).

#![warn(missing_docs)]

use choco_qsim::{Circuit, PhasePoly, UBlock};
use std::sync::Arc;

/// Returns `true` when a bench harness should skip slow cases
/// (`--quick` argument or `CHOCO_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("CHOCO_QUICK").is_some()
}

/// The objective polynomial both bench layers evolve: a nearest-neighbour
/// chain with per-variable linear terms.
fn bench_poly(n: usize) -> PhasePoly {
    let mut poly = PhasePoly::new(n);
    for i in 0..n {
        poly.add_linear(i, 0.3 * i as f64);
        if i + 1 < n {
            poly.add_quadratic(i, i + 1, -0.2);
        }
    }
    poly
}

/// The generic bench layer: a Hadamard wall, one diagonal evolution, and
/// `n/2` serialized three-qubit commute blocks. Register-filling by
/// design — the workload behind the `statevector_layer` groups. One
/// definition serves the Criterion benches and `bench_json`, so their
/// published numbers always describe the same circuit.
pub fn layer_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    finish_layer(c, n)
}

/// The same layer without the Hadamard wall: a feasible-subspace-confined
/// Choco-Q instance (basis load + diagonal + serialized commute blocks),
/// where the sparse engine's `O(|F|·poly)` cost crosses over the dense
/// engine's `O(2^(n-k))` strides — the workload behind the `choco_layer`
/// groups and `BENCH_simulation.json`'s `sparse_speedup_vs_dense`.
pub fn choco_layer_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.load_bits(0b101);
    finish_layer(c, n)
}

fn finish_layer(mut c: Circuit, n: usize) -> Circuit {
    c.diag(Arc::new(bench_poly(n)), 0.4);
    for k in 0..n / 2 {
        let mut u = vec![0i8; n];
        u[k] = 1;
        u[(k + 1) % n] = -1;
        u[(k + 2) % n] = 1;
        c.ublock(UBlock::from_u_with_angle(&u, 0.5));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_reads_env() {
        // The test binary is never invoked with --quick; the env var is
        // the observable lever.
        std::env::remove_var("CHOCO_QUICK");
        assert!(!quick_mode());
        std::env::set_var("CHOCO_QUICK", "1");
        assert!(quick_mode());
        std::env::remove_var("CHOCO_QUICK");
    }
}
