//! Table II — circuit depth, success rate, in-constraints rate, and ARG of
//! the four designs across the 12 benchmark classes (F1–F4, G1–G4, K1–K4).
//!
//! Run: `cargo run --release -p choco-bench --bin table2 [--quick]`
//!
//! `--quick` skips classes above 18 variables (F4, G4) whose state vectors
//! are slow on CPU.

use choco_bench::{expect_optimum, fmt_rate, quick_mode, run_all_solvers, Table};
use choco_problems::{instance, scale_label, ALL_CLASSES};

fn main() {
    let quick = quick_mode();
    println!("Table II reproduction — 12 benchmarks × 4 designs");
    println!("(paper reference: Choco-Q success 13.3%–99.8%, in-constraints 100% everywhere,");
    println!(" baselines mostly <15% success; Choco-Q depth comparable, ~1 layer)\n");

    let table = Table::new(
        &[
            "case", "scale", "vars", "cons", "design", "success%", "in-cons%", "ARG", "depth",
        ],
        &[5, 10, 5, 5, 8, 9, 9, 8, 7],
    );

    let mut improvements: Vec<f64> = Vec::new();
    for id in ALL_CLASSES {
        let problem = instance(id, 1);
        if quick && problem.n_vars() > 18 {
            println!("{id}: skipped (--quick, {} vars)", problem.n_vars());
            continue;
        }
        let optimum = expect_optimum(&problem);
        let runs = run_all_solvers(&problem, &optimum);
        let mut cyclic_success = None;
        let mut choco_success = None;
        for run in &runs {
            let (success, inc, arg, depth) = match (&run.outcome, &run.metrics) {
                (Some(o), Some(m)) => (
                    fmt_rate(Some(m.success_rate)),
                    fmt_rate(Some(m.in_constraints_rate)),
                    format!("{:.2}", m.arg),
                    o.circuit
                        .transpiled_depth
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| format!("~{}", o.circuit.logical_depth)),
                ),
                _ => ("err".into(), "err".into(), "-".into(), "-".into()),
            };
            if let Some(m) = &run.metrics {
                match run.name {
                    "cyclic" => cyclic_success = Some(m.success_rate),
                    "choco-q" => choco_success = Some(m.success_rate),
                    _ => {}
                }
            }
            table.row(&[
                id.to_string(),
                scale_label(id).to_string(),
                problem.n_vars().to_string(),
                problem.constraints().len().to_string(),
                run.name.to_string(),
                success,
                inc,
                arg,
                depth,
            ]);
        }
        if let (Some(c), Some(q)) = (cyclic_success, choco_success) {
            if c > 0.0 && q > 0.0 {
                improvements.push(q / c);
            }
        }
        table.rule();
    }

    if !improvements.is_empty() {
        println!(
            "\nChoco-Q vs cyclic success-rate improvement (geometric mean over classes \
             where both found the optimum): {:.1}×",
            choco_mathkit::geometric_mean(&improvements)
        );
        println!("(paper Table II quotes >235× on the classes prior methods could solve)");
    }
}
