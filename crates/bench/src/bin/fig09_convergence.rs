//! Figure 9 — (a) convergence of the optimizer cost on an F1 instance;
//! (b) parallelism: the number of measured (non-zero-probability) states
//! through the Choco-Q circuit.
//!
//! Paper reference: Choco-Q reaches the optimal cost within ~30 iterations
//! (and is within 20% after 7), while the baselines start ~10³ away and
//! are still ≥78% away after 148 iterations. Parallelism grows
//! exponentially around the first quarter of the circuit.
//!
//! Run: `cargo run --release -p choco-bench --bin fig09_convergence`

use choco_bench::expect_optimum;
use choco_core::{support_profile, ChocoQConfig, ChocoQSolver, CommuteDriver};
use choco_model::Solver;
use choco_problems::instance;
use choco_solvers::{CyclicQaoaSolver, HeaSolver, PenaltyQaoaSolver, QaoaConfig};
use std::sync::Arc;

fn main() {
    // ---------- (a) convergence on F1 (2F-1D) ----------
    let problem = instance("F1", 1);
    let optimum = expect_optimum(&problem);
    println!(
        "Figure 9(a) — cost vs iteration on {} (optimal cost {})\n",
        problem.name(),
        optimum.value
    );

    let penalty = PenaltyQaoaSolver::new(QaoaConfig::default());
    let cyclic = CyclicQaoaSolver::new(QaoaConfig::default());
    let hea = HeaSolver::new(QaoaConfig::default());
    let choco = ChocoQSolver::new(ChocoQConfig::default());
    let solvers: [&dyn Solver; 4] = [&penalty, &cyclic, &hea, &choco];
    for solver in solvers {
        match solver.solve(&problem) {
            Ok(outcome) => {
                let shown: Vec<String> = outcome
                    .cost_history
                    .iter()
                    .take(30)
                    .step_by(3)
                    .map(|c| format!("{c:8.2}"))
                    .collect();
                println!(
                    "{:<10} iters={:<4} history(every 3rd): {}",
                    solver.name(),
                    outcome.iterations,
                    shown.join(" ")
                );
            }
            Err(e) => println!("{:<10} failed: {e}", solver.name()),
        }
    }
    println!(
        "\n(Choco-Q histories are exact objective expectations — feasible by\n\
         construction; penalty/HEA histories include the λ‖Cx−c‖² term, which\n\
         is why they start orders of magnitude higher.)\n"
    );

    // ---------- (b) parallelism through the circuit ----------
    println!("Figure 9(b) — #measured states through the Choco-Q circuit\n");
    for id in ["F1", "F2", "F3"] {
        let problem = instance(id, 1);
        let driver = CommuteDriver::build(problem.constraints()).expect("driver");
        let initial = problem.first_feasible().expect("feasible");
        let ordered = driver.ordered_terms(initial);
        let poly = Arc::new(problem.cost_poly());
        let params = ChocoQSolver::initial_params(1, ordered.len());
        let circuit =
            ChocoQSolver::build_circuit(problem.n_vars(), &poly, &ordered, initial, 1, &params);
        let profile = support_profile(&circuit, 1e-9);
        let marks: Vec<String> = (0..=4)
            .map(|q| {
                let idx = (profile.len() - 1) * q / 4;
                format!("{}@{:>3}%", profile[idx], 25 * q)
            })
            .collect();
        println!(
            "{id}: {} gates, support growth {}",
            circuit.len(),
            marks.join(" → ")
        );
    }
    println!(
        "\nExpected shape: support = 1 at the start (special feasible initial\n\
         state), exponential growth once the serialized driver begins — the\n\
         quantum parallelism the paper highlights."
    );
}
