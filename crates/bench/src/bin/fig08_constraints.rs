//! Figure 8 — success rate and circuit depth vs the number of constraints
//! (graph benchmarks; constraint count on the x-axis).
//!
//! Paper reference: beyond ~12 constraints every baseline collapses to ≈0
//! success, while Choco-Q stays above 10%.
//!
//! Run: `cargo run --release -p choco-bench --bin fig08_constraints [--quick]`

use choco_bench::{expect_optimum, fmt_rate, quick_mode, run_all_solvers, Table};
use choco_problems::{gcp_random, kpp_random};

fn main() {
    let quick = quick_mode();
    // Graph-problem family with growing constraint counts:
    // GCP (3+e vertices-edges at 3 colors) and KPP variants.
    let mut cases: Vec<choco_model::Problem> = vec![
        kpp_random(4, 3, 2, true, 1).expect("kpp"), // 6 constraints, 8 vars
        gcp_random(3, 1, 3, 1).expect("gcp"),       // 6 constraints, 12 vars
        kpp_random(6, 7, 2, true, 1).expect("kpp"), // 8 constraints, 12 vars
        gcp_random(3, 2, 3, 1).expect("gcp"),       // 9 constraints, 15 vars
        kpp_random(8, 10, 2, true, 1).expect("kpp"), // 10 constraints, 16 vars
        gcp_random(3, 3, 3, 1).expect("gcp"),       // 12 constraints, 18 vars
    ];
    if !quick {
        cases.push(gcp_random(4, 4, 3, 1).expect("gcp")); // 16 constraints, 24 vars
    }
    cases.sort_by_key(|p| p.constraints().len());

    println!("Figure 8 reproduction — success rate vs #constraints\n");
    let table = Table::new(
        &[
            "#cons",
            "vars",
            "penalty%",
            "cyclic%",
            "hea%",
            "choco%",
            "choco depth",
        ],
        &[6, 5, 9, 9, 9, 9, 12],
    );
    for problem in &cases {
        let optimum = expect_optimum(problem);
        let runs = run_all_solvers(problem, &optimum);
        let success = |name: &str| {
            runs.iter()
                .find(|r| r.name == name)
                .and_then(|r| r.metrics.as_ref().map(|m| m.success_rate))
        };
        let depth = runs
            .iter()
            .find(|r| r.name == "choco-q")
            .and_then(|r| r.outcome.as_ref())
            .and_then(|o| o.circuit.transpiled_depth)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into());
        table.row(&[
            problem.constraints().len().to_string(),
            problem.n_vars().to_string(),
            fmt_rate(success("penalty")),
            fmt_rate(success("cyclic")),
            fmt_rate(success("hea")),
            fmt_rate(success("choco-q")),
            depth,
        ]);
    }
    println!(
        "\nExpected shape: baseline success decays toward ✗ as constraints\n\
         grow; Choco-Q's stays high (the commute driver confines the search\n\
         space no matter how many constraints there are)."
    );
}
