//! Figure 11 — end-to-end latency on the three devices (a) and the
//! compile / execute / classical breakdown for Choco-Q on Fez (b).
//!
//! Paper reference: Choco-Q achieves 2.97×–5.84× (avg 4.69×) speedup and
//! always finishes within 10 s; ~30 iterations dominate ≈70% of the total;
//! compilation is 0.3–0.7 s.
//!
//! Run: `cargo run --release -p choco-bench --bin fig11_latency [--quick]`

use choco_bench::{expect_optimum, fmt_secs, quick_mode, run_all_solvers, Table};
use choco_device::{Device, LatencyModel};
use choco_problems::instance;

fn main() {
    let classes: &[&str] = if quick_mode() {
        &["F1"]
    } else {
        &["F1", "G1", "K1"]
    };
    println!("Figure 11(a) reproduction — end-to-end latency per device\n");

    let latency_model = LatencyModel::default();
    let table = Table::new(
        &[
            "device",
            "case",
            "design",
            "total",
            "compile",
            "quantum",
            "classical",
        ],
        &[15, 5, 8, 9, 9, 9, 9],
    );
    let mut speedups: Vec<f64> = Vec::new();

    for device in Device::ALL {
        let model = device.model();
        for id in classes {
            let problem = instance(id, 1);
            let optimum = expect_optimum(&problem);
            let runs = run_all_solvers(&problem, &optimum);
            let mut best_baseline: Option<f64> = None;
            let mut choco_total: Option<f64> = None;
            for run in &runs {
                let Some(outcome) = &run.outcome else {
                    table.row(&[
                        model.name.into(),
                        id.to_string(),
                        run.name.into(),
                        "err".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                };
                let est = latency_model.estimate_from_outcome(&model, outcome, 10_000);
                table.row(&[
                    model.name.into(),
                    id.to_string(),
                    run.name.into(),
                    fmt_secs(est.total()),
                    fmt_secs(est.compile),
                    fmt_secs(est.quantum),
                    fmt_secs(est.classical),
                ]);
                let total = est.total().as_secs_f64();
                if run.name == "choco-q" {
                    choco_total = Some(total);
                } else {
                    best_baseline = Some(best_baseline.map_or(total, |b: f64| b.min(total)));
                }
            }
            if let (Some(b), Some(c)) = (best_baseline, choco_total) {
                if c > 0.0 {
                    speedups.push(b / c);
                }
            }
            table.rule();
        }
    }
    if !speedups.is_empty() {
        println!(
            "\nChoco-Q speedup vs the *fastest* baseline per case: geometric mean {:.2}× \
             (paper: 2.97×–5.84×, avg 4.69× vs cyclic)",
            choco_mathkit::geometric_mean(&speedups)
        );
    }
    println!(
        "\nFigure 11(b): the `quantum` column is the iterative execution the\n\
         paper attributes ~70% of Choco-Q's latency to; `compile` is the\n\
         Hamiltonian construction + Lemma-2 lowering measured on this host."
    );
}
