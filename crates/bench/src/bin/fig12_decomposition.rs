//! Figure 12 — Hamiltonian decomposition: Trotter + exact unitary
//! synthesis vs Choco-Q's Lemma-2 lowering, as the register grows.
//!
//! Paper reference: at 10 qubits Choco-Q is ~10⁶× faster and ~8341× leaner
//! in memory; Trotter times out beyond 10 qubits; Choco-Q's resulting
//! depth grows linearly (24 at 5 qubits → 66 at 12 in the paper's gate
//! accounting) while Trotter's explodes past 10¹⁰.
//!
//! Run: `cargo run --release -p choco-bench --bin fig12_decomposition [--quick]`

use choco_bench::{fmt_secs, quick_mode, Table};
use choco_core::{lemma2_stats, trotter_decompose, CommuteDriver, TrotterConfig};
use choco_mathkit::{LinEq, LinSystem};
use std::time::Duration;

/// One summation constraint over n variables: the driver every method has
/// to implement.
fn ring_driver(n: usize) -> CommuteDriver {
    let mut sys = LinSystem::new(n);
    sys.push(LinEq::new((0..n).map(|i| (i, 1i64)), 1));
    CommuteDriver::build(&sys).expect("ring driver")
}

fn main() {
    let quick = quick_mode();
    let trotter_max = if quick { 7 } else { 10 };
    let lemma2_max = if quick { 12 } else { 16 };
    let timeout = if quick {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(60)
    };

    println!("Figure 12(a) reproduction — decomposition time and memory\n");
    let table = Table::new(
        &["#qubits", "method", "time", "memory", "status"],
        &[8, 10, 12, 12, 9],
    );
    for n in 2..=trotter_max {
        let driver = ring_driver(n);
        let report = trotter_decompose(
            &driver,
            0.7,
            &TrotterConfig {
                slices: 128,
                timeout,
            },
        );
        table.row(&[
            n.to_string(),
            "trotter".into(),
            fmt_secs(report.total_time()),
            format!("{:.1} MB", report.memory_bytes as f64 / 1e6),
            if report.timed_out { "TIMEOUT" } else { "ok" }.into(),
        ]);
        let l2 = lemma2_stats(&driver, 0.7);
        table.row(&[
            n.to_string(),
            "choco-q".into(),
            fmt_secs(l2.time),
            format!("{:.3} MB", l2.memory_bytes as f64 / 1e6),
            "ok".into(),
        ]);
    }
    println!(
        "\n(beyond {trotter_max} qubits the Trotter flow exceeds the timeout — the\n\
         paper reports the same wall at >10 qubits)\n"
    );

    println!("Figure 12(b) reproduction — resulting circuit depth\n");
    let table = Table::new(&["#qubits", "trotter depth", "choco-q depth"], &[8, 16, 14]);
    for n in 2..=lemma2_max {
        let driver = ring_driver(n);
        let trotter_depth = if n <= trotter_max {
            let report = trotter_decompose(
                &driver,
                0.7,
                &TrotterConfig {
                    slices: 128,
                    timeout,
                },
            );
            if report.timed_out {
                "timeout".to_string()
            } else {
                format!("{:.2e}", report.depth as f64)
            }
        } else {
            "-".to_string()
        };
        let l2 = lemma2_stats(&driver, 0.7);
        table.row(&[n.to_string(), trotter_depth, l2.depth.to_string()]);
    }
    println!(
        "\nExpected shape: Trotter depth grows exponentially (≫10⁶ already at\n\
         8–10 qubits, ×128 slices), Choco-Q's linearly — the >10⁴× gap of\n\
         the paper."
    );
}
