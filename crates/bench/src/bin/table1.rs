//! Table I — QAOA designs for constrained binary optimization, compared on
//! a 15-qubit graph coloring problem.
//!
//! Paper reference (15-qubit GCP, IBM Fez timing model):
//!
//! | design | universality | in-constraints | success | latency |
//! |---|---|---|---|---|
//! | penalty (Verma et al.) | soft constraints | 0.03% | 0.02% | 16.6 s |
//! | penalty (Red-QAOA)     | soft constraints | 0.07% | 0.03% | 16.7 s |
//! | cyclic Hamiltonian     | part of linear   | 0.67% | 0.14% | 19.6 s |
//! | **Choco-Q**            | arbitrary linear | 100%  | 67.1% | 7.07 s |
//!
//! Run: `cargo run --release -p choco-bench --bin table1`

use choco_bench::{expect_optimum, fmt_rate, fmt_secs, run_all_solvers, Table};
use choco_device::{Device, LatencyModel};
use choco_problems::gcp_random;

fn main() {
    // 15 qubits: 3 vertices, 2 edges, 3 colors → (3+2)·3 = 15 variables.
    let problem = gcp_random(3, 2, 3, 1).expect("generate");
    println!(
        "Table I reproduction — {} ({} qubits, {} constraints)\n",
        problem.name(),
        problem.n_vars(),
        problem.constraints().len()
    );

    let optimum = expect_optimum(&problem);
    let runs = run_all_solvers(&problem, &optimum);

    let table = Table::new(
        &[
            "design",
            "universality",
            "in-cons.%",
            "success%",
            "latency(Fez)",
        ],
        &[10, 24, 10, 10, 12],
    );
    let fez = Device::Fez.model();
    let latency_model = LatencyModel::default();
    for run in &runs {
        let universality = match run.name {
            "penalty" | "hea" => "soft constraints",
            "cyclic" => "only part of linear",
            _ => "arbitrary linear (hard)",
        };
        match (&run.outcome, &run.metrics) {
            (Some(outcome), Some(m)) => {
                let latency = latency_model
                    .estimate_from_outcome(&fez, outcome, outcome.counts.shots())
                    .total();
                table.row(&[
                    run.name.to_string(),
                    universality.to_string(),
                    fmt_rate(Some(m.in_constraints_rate)),
                    fmt_rate(Some(m.success_rate)),
                    fmt_secs(latency),
                ]);
            }
            _ => table.row(&[
                run.name.to_string(),
                universality.to_string(),
                "err".into(),
                "err".into(),
                run.error.clone().unwrap_or_default(),
            ]),
        }
    }
    table.rule();
    println!(
        "\nExpected shape (paper Table I): Choco-Q reaches 100% in-constraints\n\
         and a success rate orders of magnitude above every baseline, with\n\
         lower end-to-end latency than the 7-layer baselines."
    );
}
