//! Figure 7 — average success rate vs number of repeated layers (1–7).
//!
//! Paper reference: Choco-Q starts at 27.4% (1 layer) and saturates near
//! 38.3% from 2 layers on (averaged over all 12 classes incl. the hardest);
//! the baselines stay below ~5% and gain ≈0.5%/layer.
//!
//! Run: `cargo run --release -p choco-bench --bin fig07_layers [--quick]`

use choco_bench::{expect_optimum, quick_mode, Table};
use choco_core::{ChocoQConfig, ChocoQSolver};
use choco_model::Solver;
use choco_problems::instance;
use choco_solvers::{CyclicQaoaSolver, HeaSolver, PenaltyQaoaSolver, QaoaConfig};

fn main() {
    let classes: &[&str] = if quick_mode() {
        &["F1", "K1"]
    } else {
        &["F1", "G1", "K1", "K2"]
    };
    let max_layers = 7usize;
    println!("Figure 7 reproduction — success rate vs #layers over {classes:?}\n");

    let table = Table::new(
        &["#layers", "penalty%", "cyclic%", "hea%", "choco-q%"],
        &[8, 9, 9, 9, 9],
    );
    for layers in 1..=max_layers {
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for id in classes {
            let problem = instance(id, 1);
            let optimum = expect_optimum(&problem);
            let qcfg = QaoaConfig {
                layers,
                max_iters: 60,
                ..QaoaConfig::default()
            };
            let ccfg = ChocoQConfig {
                layers,
                max_iters: 60,
                restarts: 2,
                ..ChocoQConfig::default()
            };
            let penalty = PenaltyQaoaSolver::new(qcfg.clone());
            let cyclic = CyclicQaoaSolver::new(qcfg.clone());
            let hea = HeaSolver::new(qcfg.clone());
            let choco = ChocoQSolver::new(ccfg);
            let solvers: [&dyn Solver; 4] = [&penalty, &cyclic, &hea, &choco];
            for (k, solver) in solvers.iter().enumerate() {
                if let Ok(outcome) = solver.solve(&problem) {
                    let m = outcome.metrics_with(&problem, &optimum);
                    sums[k] += m.success_rate;
                    counts[k] += 1;
                }
            }
        }
        let avg = |k: usize| {
            if counts[k] == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", 100.0 * sums[k] / counts[k] as f64)
            }
        };
        table.row(&[layers.to_string(), avg(0), avg(1), avg(2), avg(3)]);
    }
    println!(
        "\nExpected shape: Choco-Q far above every baseline at every layer\n\
         count, with most of its success already present at 1 layer; the\n\
         baselines improve slowly with depth."
    );
}
