//! Figure 10 — success rate and in-constraints rate on the three IBM
//! device models (F1 / G1 / K1 under calibrated noise).
//!
//! Paper reference: Choco-Q improves success by 2.65× and in-constraints
//! by 2.43× on average; Fez (CZ basis, 99.7% fidelity) reaches up to 48%
//! in-constraints; G1 is the hardest (12 qubits → more crosstalk).
//!
//! Run: `cargo run --release -p choco-bench --bin fig10_hardware [--quick]`

use choco_bench::{expect_optimum, fmt_rate, quick_mode, Table};
use choco_core::{ChocoQConfig, ChocoQSolver};
use choco_device::Device;
use choco_model::Solver;
use choco_problems::instance;
use choco_solvers::{CyclicQaoaSolver, HeaSolver, PenaltyQaoaSolver, QaoaConfig};

fn main() {
    let classes: &[&str] = if quick_mode() {
        &["F1"]
    } else {
        &["F1", "G1", "K1"]
    };
    println!("Figure 10 reproduction — noisy-device success / in-constraints rates\n");

    let table = Table::new(
        &["device", "case", "design", "success%", "in-cons%"],
        &[15, 5, 8, 9, 9],
    );
    let mut choco_gain_succ: Vec<f64> = Vec::new();
    let mut choco_gain_inc: Vec<f64> = Vec::new();

    for device in Device::ALL {
        let model = device.model();
        for id in classes {
            let problem = instance(id, 1);
            let optimum = expect_optimum(&problem);
            let noise = Some(model.noise());
            let qcfg = QaoaConfig {
                max_iters: 50,
                shots: 4_000,
                noise,
                noise_trajectories: 20,
                ..QaoaConfig::default()
            };
            let ccfg = ChocoQConfig {
                max_iters: 50,
                shots: 4_000,
                restarts: 2,
                noise,
                noise_trajectories: 20,
                ..ChocoQConfig::default()
            };
            let penalty = PenaltyQaoaSolver::new(qcfg.clone());
            let cyclic = CyclicQaoaSolver::new(qcfg.clone());
            let hea = HeaSolver::new(qcfg.clone());
            let choco = ChocoQSolver::new(ccfg);
            let solvers: [&dyn Solver; 4] = [&penalty, &cyclic, &hea, &choco];
            let mut baseline_best = (0.0f64, 0.0f64);
            for solver in solvers {
                match solver.solve(&problem) {
                    Ok(outcome) => {
                        let m = outcome.metrics_with(&problem, &optimum);
                        table.row(&[
                            model.name.to_string(),
                            id.to_string(),
                            solver.name().to_string(),
                            fmt_rate(Some(m.success_rate)),
                            fmt_rate(Some(m.in_constraints_rate)),
                        ]);
                        if solver.name() == "choco-q" {
                            if baseline_best.0 > 0.0 {
                                choco_gain_succ.push(m.success_rate / baseline_best.0);
                            }
                            if baseline_best.1 > 0.0 {
                                choco_gain_inc.push(m.in_constraints_rate / baseline_best.1);
                            }
                        } else {
                            baseline_best.0 = baseline_best.0.max(m.success_rate);
                            baseline_best.1 = baseline_best.1.max(m.in_constraints_rate);
                        }
                    }
                    Err(e) => table.row(&[
                        model.name.to_string(),
                        id.to_string(),
                        solver.name().to_string(),
                        "err".into(),
                        e.to_string(),
                    ]),
                }
            }
            table.rule();
        }
    }

    if !choco_gain_succ.is_empty() {
        println!(
            "\nChoco-Q vs best baseline under noise: success ×{:.2}, in-constraints ×{:.2} \
             (geometric means; paper: 2.65× / 2.43×)",
            choco_mathkit::geometric_mean(&choco_gain_succ),
            choco_mathkit::geometric_mean(&choco_gain_inc)
        );
    }
}
