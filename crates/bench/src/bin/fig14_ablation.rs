//! Figure 14 — ablation of the three optimization passes under the IBMQ
//! noise model:
//!
//! * **Opt1** — Hamiltonian serialization (always on; without it nothing
//!   deploys at all),
//! * **Opt2** — the Lemma-2 equivalent decomposition (its ablation lowers
//!   each serialized block with *generic* two-level unitary synthesis),
//! * **Opt3** — variable elimination (2 variables, as in the paper).
//!
//! Paper reference: Opt1+2 is 5.7× shallower than Opt1 alone and 2.4×
//! more successful; Opt3 adds another 1.3–1.4×.
//!
//! Run: `cargo run --release -p choco-bench --bin fig14_ablation [--quick]`

use choco_bench::{expect_optimum, fmt_rate, quick_mode, Table};
use choco_core::{plan_elimination, ChocoQConfig, ChocoQSolver, CommuteDriver};
use choco_device::Device;
use choco_mathkit::{expm, Complex64};
use choco_model::{Problem, Solver};
use choco_problems::instance;
use choco_qsim::two_level_decompose;

/// Depth of the serialized driver when each block is lowered by *generic*
/// two-level synthesis instead of Lemma 2 (the Opt2 ablation). Blocks are
/// independent, so depths add.
fn generic_block_depth(problem: &Problem) -> u128 {
    let driver = CommuteDriver::build(problem.constraints()).expect("driver");
    let mut total: u128 = 0;
    for u in driver.terms() {
        let support: Vec<usize> = (0..u.len()).filter(|&i| u[i] != 0).collect();
        let k = support.len();
        // Dense e^{-iβ Hc} on the support qubits only.
        let compressed: Vec<i8> = support.iter().map(|&i| u[i]).collect();
        let h = CommuteDriver::term_matrix(&compressed);
        let unitary = expm(&h.scale(Complex64::new(0.0, -0.8)));
        let cost = two_level_decompose(&unitary).cost_estimate(k);
        total += cost.depth_estimate;
    }
    total
}

fn main() {
    let classes: &[&str] = if quick_mode() { &["F1"] } else { &["F1", "K1"] };
    let fez = Device::Fez.model();
    println!(
        "Figure 14 reproduction — ablation under the {} noise model\n",
        fez.name
    );

    let table = Table::new(
        &["case", "config", "depth", "success%(noisy)"],
        &[5, 10, 9, 16],
    );
    for id in classes {
        let problem = instance(id, 1);
        let optimum = expect_optimum(&problem);

        // --- Opt1 (serialization + generic synthesis): depth analytically,
        // success not simulatable at that depth on NISQ — the paper's point.
        let opt1_depth = generic_block_depth(&problem);
        table.row(&[
            id.to_string(),
            "Opt1".into(),
            format!("{opt1_depth}"),
            "(undeployable)".into(),
        ]);

        // --- Opt1+3: generic synthesis on the 2-variable-eliminated problem.
        let plan = plan_elimination(&problem, 2).expect("plan");
        let opt13_depth = plan
            .branches
            .first()
            .map(|b| generic_block_depth(&b.problem))
            .unwrap_or(0);
        table.row(&[
            id.to_string(),
            "Opt1+3".into(),
            format!("{opt13_depth}"),
            "(undeployable)".into(),
        ]);

        // --- Opt1+2 and Opt1+2+3: the real solver under noise.
        for (label, eliminate) in [("Opt1+2", 0usize), ("Opt1+2+3", 2)] {
            let config = ChocoQConfig {
                eliminate,
                max_iters: 60,
                restarts: 2,
                shots: 4_000,
                noise: Some(fez.noise()),
                noise_trajectories: 12,
                transpiled_stats: true,
                ..ChocoQConfig::default()
            };
            match ChocoQSolver::new(config).solve(&problem) {
                Ok(outcome) => {
                    let m = outcome.metrics_with(&problem, &optimum);
                    table.row(&[
                        id.to_string(),
                        label.into(),
                        outcome
                            .circuit
                            .transpiled_depth
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "-".into()),
                        fmt_rate(Some(m.success_rate)),
                    ]);
                }
                Err(e) => table.row(&[id.to_string(), label.into(), "-".into(), e.to_string()]),
            }
        }
        table.rule();
    }
    println!(
        "\nExpected shape: Opt2 (Lemma 2) collapses the generic-synthesis depth\n\
         by orders of magnitude; Opt3 shaves a further 1.3–2.6× and lifts the\n\
         noisy success rate accordingly (paper Fig. 14)."
    );
}
