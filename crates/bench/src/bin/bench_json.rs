//! Headless simulation microbenchmarks with machine-readable output.
//!
//! Runs the state-vector kernels at n ∈ {10, 14, 18, 20} on three engines
//! (scan-and-mask scalar baseline, strided fast path, workspace-backed
//! solver path) plus per-kernel micro-measurements, a **dense vs sparse
//! crossover group** on a subspace-confined Choco-Q layer at
//! n ∈ {18, 22, 24}, and an **end-to-end optimizer-iteration group**
//! (`choco_iteration_*`: one warmed `SimWorkspace::run` of a two-layer
//! multi-one-hot Choco-Q stack on the dense, sparse, and compact
//! engines — the `ns_per_iteration` behind `compact_speedup_vs_sparse`),
//! and writes `BENCH_simulation.json` so the perf trajectory stays
//! comparable across PRs.
//!
//! ```text
//! cargo run --release -p choco-bench --bin bench_json [-- --out PATH] [--quick]
//! ```
//!
//! `--quick` (or `CHOCO_QUICK=1`) caps the register at n = 14.

use choco_bench::{
    choco_layer_circuit, choco_onehot_candidates, choco_onehot_stack, layer_circuit, quick_mode,
};
use choco_core::{ChocoQConfig, ChocoQSolver, CommuteDriver};
use choco_qsim::oracle::ScalarStateVector;
use choco_qsim::{EngineKind, SimConfig, SimWorkspace, SparseStateVector, StateVector, UBlock};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured case.
struct Entry {
    group: &'static str,
    n: usize,
    ns_per_op: f64,
}

/// Median ns/op over `samples` timed samples, each sized to ~`budget_ms`.
fn measure<F: FnMut()>(mut op: F, samples: usize, budget_ms: f64) -> f64 {
    // Calibrate.
    let t0 = Instant::now();
    op();
    let per_iter = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((budget_ms / 1e3 / samples as f64) / per_iter).clamp(1.0, 1e7) as u64;
    let mut timings: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            op();
        }
        timings.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    timings[timings.len() / 2]
}

fn main() {
    let mut out_path = String::from("BENCH_simulation.json");
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_path = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--out needs a path"))
            .clone();
    }
    let sizes: &[usize] = if quick_mode() {
        &[10, 14]
    } else {
        &[10, 14, 18, 20]
    };
    let samples = 7;
    let budget_ms = 700.0;
    let config = SimConfig::default();
    let mut entries: Vec<Entry> = Vec::new();

    for &n in sizes {
        eprintln!("measuring n = {n} …");
        let layer = layer_circuit(n);

        entries.push(Entry {
            group: "statevector_layer_scalar",
            n,
            ns_per_op: measure(
                || {
                    std::hint::black_box(ScalarStateVector::run(&layer));
                },
                samples,
                budget_ms,
            ),
        });
        entries.push(Entry {
            group: "statevector_layer",
            n,
            ns_per_op: measure(
                || {
                    std::hint::black_box(StateVector::run_with(&layer, config));
                },
                samples,
                budget_ms,
            ),
        });
        let mut ws = SimWorkspace::new(config);
        ws.run(&layer);
        entries.push(Entry {
            group: "statevector_layer_workspace",
            n,
            ns_per_op: measure(
                || {
                    std::hint::black_box(ws.run(&layer));
                },
                samples,
                budget_ms,
            ),
        });

        // Per-kernel micro benches: a gate and its inverse applied to a
        // persistent superposition state (no per-op clone), halved to give
        // per-gate cost.
        let mut fast_state = StateVector::run_with(&layer, config);
        let mut scalar_state = ScalarStateVector::run(&layer);
        let block = {
            let mut u = vec![0i8; n];
            u[0] = 1;
            u[n / 2] = -1;
            u[n - 1] = 1;
            u
        };
        let fwd = UBlock::from_u_with_angle(&block, 0.5);
        let rev = UBlock::from_u_with_angle(&block, -0.5);
        entries.push(Entry {
            group: "ublock_scalar",
            n,
            ns_per_op: measure(
                || {
                    scalar_state.apply_ublock(&fwd);
                    scalar_state.apply_ublock(&rev);
                },
                samples,
                budget_ms / 2.0,
            ) / 2.0,
        });
        entries.push(Entry {
            group: "ublock",
            n,
            ns_per_op: measure(
                || {
                    fast_state.apply_ublock(&fwd);
                    fast_state.apply_ublock(&rev);
                },
                samples,
                budget_ms / 2.0,
            ) / 2.0,
        });
        let mcp = |angle: f64| choco_qsim::Gate::McPhase {
            qubits: vec![0, n / 2, n - 1],
            angle,
        };
        entries.push(Entry {
            group: "mcphase",
            n,
            ns_per_op: measure(
                || {
                    fast_state.apply_gate(&mcp(0.3));
                    fast_state.apply_gate(&mcp(-0.3));
                },
                samples,
                budget_ms / 2.0,
            ) / 2.0,
        });
        entries.push(Entry {
            group: "hadamard",
            n,
            ns_per_op: measure(
                || {
                    fast_state.apply_gate(&choco_qsim::Gate::H(n / 2));
                    fast_state.apply_gate(&choco_qsim::Gate::H(n / 2));
                },
                samples,
                budget_ms / 2.0,
            ) / 2.0,
        });
    }

    // Dense vs sparse crossover on the confined Choco-Q layer. Bigger
    // registers than the generic group: this is exactly where the dense
    // engine starts paying for the 2^n it does not need. The dense side
    // gets a smaller sample count — one n = 24 run already costs seconds.
    let sparse_sizes: &[usize] = if quick_mode() { &[14] } else { &[18, 22, 24] };
    for &n in sparse_sizes {
        eprintln!("measuring choco layer n = {n} (dense vs sparse) …");
        let layer = choco_layer_circuit(n);
        entries.push(Entry {
            group: "choco_layer_dense",
            n,
            ns_per_op: measure(
                || {
                    std::hint::black_box(StateVector::run_with(&layer, config));
                },
                3,
                budget_ms,
            ),
        });
        entries.push(Entry {
            group: "choco_layer_sparse",
            n,
            ns_per_op: measure(
                || {
                    std::hint::black_box(SparseStateVector::run_with(&layer, config));
                },
                samples,
                budget_ms / 2.0,
            ),
        });
    }

    // Whole-iteration cost per engine: what one optimizer evaluation
    // pays, workspace-warmed (buffers allocated, plans compiled) — so
    // dense measures buffer-reuse replay, sparse measures per-gate map
    // churn + support rediscovery, compact measures plan replay.
    for &n in sparse_sizes {
        eprintln!("measuring choco iteration n = {n} (dense vs sparse vs compact) …");
        let stack = choco_onehot_stack(n, 2);
        for (group, engine, samples_here) in [
            ("choco_iteration_dense", EngineKind::Dense, 3),
            ("choco_iteration_sparse", EngineKind::Sparse, samples),
            ("choco_iteration_compact", EngineKind::Compact, samples),
        ] {
            let mut ws = SimWorkspace::new(config.with_engine(engine));
            ws.run(&stack); // warmup: allocate, compile the plan
            entries.push(Entry {
                group,
                n,
                ns_per_op: measure(
                    || {
                        std::hint::black_box(ws.run(&stack));
                    },
                    samples_here,
                    budget_ms / 2.0,
                ),
            });
        }
    }

    // Batched replay: K candidate angle sets of the same onehot stack in
    // one pass over the cached plan (`SimWorkspace::run_batch`). Each
    // `choco_iteration_batched_k*` entry reports the per-iteration
    // **per-candidate** cost (batch time / K), so K = 1 is directly
    // comparable to `choco_iteration_compact` and the K = 8 ratio is the
    // headline `batched_speedup_per_candidate` number.
    let batch_n = if quick_mode() { 14 } else { 18 };
    let batch_widths: [(&str, usize); 4] = [
        ("choco_iteration_batched_k1", 1),
        ("choco_iteration_batched_k4", 4),
        ("choco_iteration_batched_k8", 8),
        ("choco_iteration_batched_k16", 16),
    ];
    {
        eprintln!("measuring batched choco iteration n = {batch_n} (K = 1, 4, 8, 16) …");
        let candidates = choco_onehot_candidates(batch_n, 2, 16);
        let mut ws = SimWorkspace::new(config.with_engine(EngineKind::Compact));
        for &(group, k) in &batch_widths {
            ws.run_batch(&candidates[..k])
                .expect("onehot stack must stay on the compact engine");
            entries.push(Entry {
                group,
                n: batch_n,
                ns_per_op: measure(
                    || {
                        std::hint::black_box(ws.run_batch(&candidates[..k]));
                    },
                    samples,
                    budget_ms / 2.0,
                ) / k as f64,
            });
        }
        assert_eq!(ws.plan_compilations(), 1, "one compile across all widths");
    }

    // Driver synthesis: the ternary fast path (equality-only constraints —
    // the slack-encoded knapsack budget) vs the generalized path (native
    // `≤` rows: slack-register sizing, kernel extension, delta
    // attachment), plus the cost of one serialized driver pass on each
    // formulation of the *same seeded items* — native runs the wider
    // encoded register with register-shifting couplings, slack runs plain
    // UBlocks over explicit slack variables.
    let synth = {
        let (items, cap) = if quick_mode() {
            (4usize, 6u64)
        } else {
            (8, 10)
        };
        eprintln!("measuring driver synthesis ({items} items, ternary vs generalized) …");
        let slack = choco_problems::knapsack_random_with(
            items,
            cap,
            1,
            choco_problems::KnapsackEncoding::Slack,
        )
        .expect("slack instance");
        let native = choco_problems::knapsack_random_with(
            items,
            cap,
            1,
            choco_problems::KnapsackEncoding::Native,
        )
        .expect("native instance");
        let ternary_build_ns = measure(
            || {
                std::hint::black_box(CommuteDriver::build(slack.constraints()).expect("driver"));
            },
            samples,
            budget_ms / 2.0,
        );
        let generalized_build_ns = measure(
            || {
                std::hint::black_box(CommuteDriver::build(native.constraints()).expect("driver"));
            },
            samples,
            budget_ms / 2.0,
        );
        // One serialized driver pass per formulation (load + every term).
        let layer_of = |problem: &choco_model::Problem| {
            let driver = CommuteDriver::build(problem.constraints()).expect("driver");
            let initial = driver.encode_state(problem.first_feasible().expect("feasible"));
            let mut c = choco_qsim::Circuit::new(driver.encoded_qubits().max(1));
            c.load_bits(initial);
            for gate in driver.gates_ordered(0.37, initial) {
                c.push(gate);
            }
            (c, driver.encoded_qubits())
        };
        let (slack_layer, slack_width) = layer_of(&slack);
        let (native_layer, native_width) = layer_of(&native);
        let mut ws = SimWorkspace::new(config);
        ws.run(&slack_layer); // warm buffers
        let slack_layer_ns = measure(
            || {
                std::hint::black_box(ws.run(&slack_layer));
            },
            samples,
            budget_ms / 2.0,
        );
        ws.run(&native_layer);
        let native_layer_ns = measure(
            || {
                std::hint::black_box(ws.run(&native_layer));
            },
            samples,
            budget_ms / 2.0,
        );
        for (group, n, ns) in [
            ("driver_synthesis_ternary", slack.n_vars(), ternary_build_ns),
            (
                "driver_synthesis_generalized",
                native_width,
                generalized_build_ns,
            ),
            ("driver_layer_slack_encoding", slack_width, slack_layer_ns),
            (
                "driver_layer_native_encoding",
                native_width,
                native_layer_ns,
            ),
        ] {
            entries.push(Entry {
                group,
                n,
                ns_per_op: ns,
            });
        }
        (
            items,
            slack.n_vars(),
            native.n_vars(),
            native_width,
            ternary_build_ns,
            generalized_build_ns,
            slack_layer_ns,
            native_layer_ns,
        )
    };

    // Multi-start solve scaling: the whole restart scheduler end to end —
    // every `(branch × restart)` variational loop pre-seeded from its
    // coordinates and fanned out over 1/2/4 restart workers, compact
    // engine, worker workspaces sharing one plan cache. One op = one full
    // `ChocoQSolver::solve_with_workspace`. (On a single-core host the
    // worker counts measure scheduler overhead, not speedup; the JSON
    // records `host_parallelism` alongside.)
    let solve_problem = if quick_mode() {
        choco_problems::instance("F1", 1)
    } else {
        choco_problems::instance("G2", 1)
    };
    let solve_restarts = 8usize;
    let solve_config = |workers: usize| ChocoQConfig {
        restarts: solve_restarts,
        restart_workers: workers,
        max_iters: 10,
        shots: 2_048,
        transpiled_stats: false,
        ..ChocoQConfig::default()
    };
    let solve_n = solve_problem.n_vars();
    for (group, workers) in [
        ("choco_solve_w1", 1usize),
        ("choco_solve_w2", 2),
        ("choco_solve_w4", 4),
    ] {
        eprintln!("measuring choco solve n = {solve_n} ({workers} restart workers) …");
        let solver = ChocoQSolver::new(solve_config(workers));
        let mut ws = SimWorkspace::new(config.with_engine(EngineKind::Compact));
        entries.push(Entry {
            group,
            n: solve_n,
            ns_per_op: measure(
                || {
                    std::hint::black_box(
                        solver
                            .solve_with_workspace(&solve_problem, &mut ws)
                            .expect("solve"),
                    );
                },
                3,
                budget_ms,
            ),
        });
    }
    // Compile-once accounting for the summary: on a fresh shared cache,
    // one parallel solve compiles each distinct circuit shape exactly
    // once across all restarts × workers.
    let (solve_plan_compiles, solve_shapes) = {
        let mut ws = SimWorkspace::new(config.with_engine(EngineKind::Compact));
        ChocoQSolver::new(solve_config(4))
            .solve_with_workspace(&solve_problem, &mut ws)
            .expect("solve");
        (ws.plan_compilations(), ws.cached_plans() as u64)
    };
    assert_eq!(
        solve_plan_compiles, solve_shapes,
        "shared plan cache must compile each shape exactly once"
    );

    // Solve-as-a-service latency: one in-process `choco-serve` session
    // over OS pipes. The first job pays plan compilation (cold cache);
    // an identically-shaped second job replays the daemon-global plan
    // cache (warm). Measured: submission→first-record latency and mean
    // per-cell latency, each cold vs warm.
    let serve_stats = {
        eprintln!("measuring choco-serve latency (cold vs warm plan cache) …");
        let state_dir =
            std::env::temp_dir().join(format!("choco_bench_serve_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let opts = choco_runner::ServeOptions {
            state_dir: state_dir.clone(),
            queue_cap: 256,
            run: choco_runner::RunOptions {
                workers: 1,
                engine: Some(EngineKind::Compact),
                ..choco_runner::RunOptions::default()
            },
            ..choco_runner::ServeOptions::default()
        };
        let serve_cells = 4usize;
        let submit = |name: &str| {
            format!(
                "{{\"op\": \"submit\", \"job\": {{\"name\": \"{name}\", \"problems\": [\"F1\"], \
                 \"solvers\": [\"choco-q\"], \"seeds\": [1, 2, 3, 4], \"shots\": 2048, \
                 \"max_iters\": 10, \"restarts\": 2, \"transpiled_stats\": false}}}}\n"
            )
        };
        let (req_read, req_write) = std::io::pipe().expect("request pipe");
        let (event_read, event_write) = std::io::pipe().expect("event pipe");
        let stats = std::thread::scope(|scope| {
            scope.spawn(|| {
                choco_runner::serve::serve(&opts, std::io::BufReader::new(req_read), event_write)
                    .expect("serve session");
            });
            use std::io::{BufRead, Write as _};
            let mut requests = req_write;
            let mut events = std::io::BufReader::new(event_read).lines();
            // (first_record_ns, total_ns, plan compilations so far).
            let mut run_job = |name: &str| -> (f64, f64, u64) {
                let t0 = Instant::now();
                requests.write_all(submit(name).as_bytes()).expect("submit");
                requests.flush().expect("flush");
                let mut first_record = None;
                loop {
                    let line = events.next().expect("event stream").expect("event line");
                    if line.contains("\"event\": \"record\"") && first_record.is_none() {
                        first_record = Some(t0.elapsed().as_nanos() as f64);
                    }
                    if line.contains("\"event\": \"done\"") {
                        break;
                    }
                    assert!(
                        !line.contains("\"event\": \"rejected\""),
                        "bench job rejected: {line}"
                    );
                }
                let total = t0.elapsed().as_nanos() as f64;
                requests.write_all(b"{\"op\": \"stats\"}\n").expect("stats");
                let compilations = loop {
                    let line = events.next().expect("event stream").expect("stats line");
                    if line.contains("\"event\": \"stats\"") {
                        let at = line.find("\"compilations\": ").expect("compilations field");
                        break line[at + "\"compilations\": ".len()..]
                            .chars()
                            .take_while(char::is_ascii_digit)
                            .collect::<String>()
                            .parse::<u64>()
                            .expect("compilation count");
                    }
                };
                (
                    first_record.expect("at least one record"),
                    total,
                    compilations,
                )
            };
            let (cold_first, cold_total, cold_compilations) = run_job("cold");
            // Two warm passes; keep the faster (one-shot latency is noisy).
            let (warm_first_a, warm_total_a, _) = run_job("warm-a");
            let (warm_first_b, warm_total_b, warm_compilations) = run_job("warm-b");
            assert_eq!(
                warm_compilations, cold_compilations,
                "identically-shaped jobs must compile zero new plans"
            );
            requests
                .write_all(b"{\"op\": \"shutdown\"}\n")
                .expect("shutdown");
            drop(requests);
            (
                cold_first,
                cold_total,
                warm_first_a.min(warm_first_b),
                warm_total_a.min(warm_total_b),
                cold_compilations,
            )
        });
        let _ = std::fs::remove_dir_all(&state_dir);
        let (cold_first, cold_total, warm_first, warm_total, cold_compilations) = stats;
        for (group, ns) in [
            ("choco_serve_first_record_cold", cold_first),
            ("choco_serve_first_record_warm", warm_first),
            ("choco_serve_per_cell_cold", cold_total / serve_cells as f64),
            ("choco_serve_per_cell_warm", warm_total / serve_cells as f64),
        ] {
            entries.push(Entry {
                group,
                n: serve_cells,
                ns_per_op: ns,
            });
        }
        (
            serve_cells,
            cold_first,
            warm_first,
            cold_total,
            warm_total,
            cold_compilations,
        )
    };

    // Assemble JSON by hand (no serde in the workspace).
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"simulation\",\n");
    let _ = writeln!(
        json,
        "  \"sim_threads\": {},\n  \"host_parallelism\": {},",
        config.threads,
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    );
    json.push_str("  \"unit\": \"ns_per_op\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"group\": \"{}\", \"n\": {}, \"ns_per_op\": {:.1}}}",
            e.group, e.n, e.ns_per_op
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"speedup_vs_scalar\": {\n");
    let mut lines = Vec::new();
    for &n in sizes {
        let find = |g: &str| {
            entries
                .iter()
                .find(|e| e.group == g && e.n == n)
                .map(|e| e.ns_per_op)
        };
        if let (Some(scalar), Some(fast), Some(ws)) = (
            find("statevector_layer_scalar"),
            find("statevector_layer"),
            find("statevector_layer_workspace"),
        ) {
            lines.push(format!(
                "    \"statevector_layer/{n}\": {{\"fast\": {:.2}, \"workspace\": {:.2}}}",
                scalar / fast,
                scalar / ws
            ));
        }
    }
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  },\n  \"sparse_speedup_vs_dense\": {\n");
    let mut lines = Vec::new();
    for &n in sparse_sizes {
        let find = |g: &str| {
            entries
                .iter()
                .find(|e| e.group == g && e.n == n)
                .map(|e| e.ns_per_op)
        };
        if let (Some(dense), Some(sparse)) = (find("choco_layer_dense"), find("choco_layer_sparse"))
        {
            lines.push(format!(
                "    \"choco_layer/{n}\": {{\"sparse\": {:.1}}}",
                dense / sparse
            ));
        }
    }
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  },\n  \"compact_speedup_vs_sparse\": {\n");
    let mut lines = Vec::new();
    for &n in sparse_sizes {
        let find = |g: &str| {
            entries
                .iter()
                .find(|e| e.group == g && e.n == n)
                .map(|e| e.ns_per_op)
        };
        if let (Some(dense), Some(sparse), Some(compact)) = (
            find("choco_iteration_dense"),
            find("choco_iteration_sparse"),
            find("choco_iteration_compact"),
        ) {
            lines.push(format!(
                "    \"choco_iteration/{n}\": {{\"compact_vs_sparse\": {:.1}, \
                 \"compact_vs_dense\": {:.1}}}",
                sparse / compact,
                dense / compact
            ));
        }
    }
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  },\n  \"batched_speedup_per_candidate\": {\n");
    {
        let find = |g: &str| {
            entries
                .iter()
                .find(|e| e.group == g && e.n == batch_n)
                .map(|e| e.ns_per_op)
                .expect("batched group measured")
        };
        let serial = find("choco_iteration_compact");
        let mut lines = vec![format!("    \"n\": {batch_n}")];
        for &(group, k) in &batch_widths {
            let per_candidate = find(group);
            lines.push(format!(
                "    \"k{k}\": {{\"ns_per_candidate\": {:.1}, \"vs_serial_compact\": {:.2}}}",
                per_candidate,
                serial / per_candidate
            ));
        }
        json.push_str(&lines.join(",\n"));
    }
    json.push_str("\n  },\n  \"choco_driver_synthesis\": {\n");
    {
        let (
            items,
            slack_vars,
            native_vars,
            encoded_qubits,
            ternary_build_ns,
            generalized_build_ns,
            slack_layer_ns,
            native_layer_ns,
        ) = synth;
        let _ = writeln!(
            json,
            "    \"items\": {items},\n    \"slack_vars\": {slack_vars},\n    \
             \"native_vars\": {native_vars},\n    \"encoded_qubits\": {encoded_qubits},\n    \
             \"ternary_build_ns\": {ternary_build_ns:.1},\n    \
             \"generalized_build_ns\": {generalized_build_ns:.1},\n    \
             \"generalized_vs_ternary_build\": {:.2},\n    \
             \"slack_layer_ns\": {slack_layer_ns:.1},\n    \
             \"native_layer_ns\": {native_layer_ns:.1},\n    \
             \"native_vs_slack_layer\": {:.2}",
            generalized_build_ns / ternary_build_ns,
            native_layer_ns / slack_layer_ns
        );
    }
    json.push_str("  },\n  \"choco_solve_multistart\": {\n");
    {
        let find = |g: &str| {
            entries
                .iter()
                .find(|e| e.group == g && e.n == solve_n)
                .map(|e| e.ns_per_op)
        };
        let w1 = find("choco_solve_w1").expect("solve group measured");
        let w2 = find("choco_solve_w2").expect("solve group measured");
        let w4 = find("choco_solve_w4").expect("solve group measured");
        let _ = writeln!(
            json,
            "    \"n\": {solve_n},\n    \"restarts\": {solve_restarts},\n    \
             \"speedup_w2\": {:.2},\n    \"speedup_w4\": {:.2},\n    \
             \"plan_compilations_per_solve\": {solve_plan_compiles},\n    \
             \"circuit_shapes\": {solve_shapes}",
            w1 / w2,
            w1 / w4
        );
    }
    json.push_str("  },\n  \"choco_serve_latency\": {\n");
    {
        let (cells, cold_first, warm_first, cold_total, warm_total, compilations) = serve_stats;
        let _ = writeln!(
            json,
            "    \"cells\": {cells},\n    \
             \"first_record_cold_ms\": {:.3},\n    \
             \"first_record_warm_ms\": {:.3},\n    \
             \"per_cell_cold_ms\": {:.3},\n    \
             \"per_cell_warm_ms\": {:.3},\n    \
             \"cold_plan_compilations\": {compilations},\n    \
             \"warm_plan_compilations\": 0,\n    \
             \"first_record_speedup_warm\": {:.2}",
            cold_first / 1e6,
            warm_first / 1e6,
            cold_total / cells as f64 / 1e6,
            warm_total / cells as f64 / 1e6,
            cold_first / warm_first
        );
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("{json}");
    eprintln!("wrote {out_path}");
}
