//! Figure 13 — variable elimination: transpiled depth (a) and noisy
//! success rate (b) as 0–3 variables are eliminated (F2 / G2 / K2).
//!
//! Paper reference: on F2, one elimination cuts depth 2.7× and boosts
//! noisy success 10.2×; the 3rd elimination adds little (most non-zeros
//! already gone); KPP barely benefits (uniform non-zero distribution).
//!
//! Run: `cargo run --release -p choco-bench --bin fig13_elimination [--quick]`

use choco_bench::{expect_optimum, fmt_rate, quick_mode, Table};
use choco_core::{plan_elimination, ChocoQConfig, ChocoQSolver, CommuteDriver};
use choco_device::Device;
use choco_model::Solver;
use choco_problems::instance;

fn main() {
    let classes: &[&str] = if quick_mode() {
        &["F2", "K2"]
    } else {
        &["F2", "G2", "K2"]
    };
    let fez = Device::Fez.model();
    println!(
        "Figure 13 reproduction — variable elimination sweep (noise: {})\n",
        fez.name
    );

    let table = Table::new(
        &[
            "case",
            "#elim",
            "branches",
            "Δ nonzeros",
            "depth",
            "success%(noisy)",
        ],
        &[5, 6, 9, 11, 7, 16],
    );
    for id in classes {
        let problem = instance(id, 1);
        let optimum = expect_optimum(&problem);
        for eliminate in 0..=3usize {
            let plan = plan_elimination(&problem, eliminate).expect("plan");
            let nonzeros: usize = plan
                .branches
                .first()
                .map(|b| {
                    CommuteDriver::build(b.problem.constraints())
                        .map(|d| d.total_nonzeros())
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            let config = ChocoQConfig {
                eliminate,
                max_iters: 50,
                restarts: 2,
                shots: 4_000,
                noise: Some(fez.noise()),
                noise_trajectories: 12,
                transpiled_stats: true,
                ..ChocoQConfig::default()
            };
            match ChocoQSolver::new(config).solve(&problem) {
                Ok(outcome) => {
                    let m = outcome.metrics_with(&problem, &optimum);
                    table.row(&[
                        id.to_string(),
                        eliminate.to_string(),
                        plan.branches.len().to_string(),
                        nonzeros.to_string(),
                        outcome
                            .circuit
                            .transpiled_depth
                            .map(|d| d.to_string())
                            .unwrap_or_else(|| "-".into()),
                        fmt_rate(Some(m.success_rate)),
                    ]);
                }
                Err(e) => table.row(&[
                    id.to_string(),
                    eliminate.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    e.to_string(),
                ]),
            }
        }
        table.rule();
    }
    println!(
        "\nExpected shape: depth and Δ-non-zeros drop with each elimination\n\
         (strongly for FLP/GCP, weakly for KPP); noisy success rises because\n\
         shallower circuits see less decoherence, at the cost of 2^k circuits."
    );
}
