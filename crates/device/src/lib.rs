//! # choco-device
//!
//! Models of the three IBM machines the paper evaluates on (§V-A):
//! **Fez** (Heron r2, CZ basis, 99.7% two-qubit fidelity), **Osaka** and
//! **Sherbrooke** (Eagle r3, single-direction ECR basis, 99.3% fidelity —
//! three ECR pulses per CZ, hence a higher effective error rate).
//!
//! Two things are modelled, both calibrated from the figures the paper
//! itself quotes:
//!
//! * [`DeviceModel::noise`] — per-gate Pauli error rates and readout
//!   error for the Monte-Carlo noise simulator (drives Fig. 10/13b/14),
//! * [`DeviceModel::execution_time`] + [`LatencyModel`] — gate-time and
//!   iteration-count based end-to-end latency estimation (drives Table I
//!   and Fig. 11).
//!
//! This is the substitution documented in DESIGN.md §4: the paper's
//! hardware claims are about relative behaviour under realistic noise and
//! timing budgets, which a calibrated model preserves.

#![warn(missing_docs)]

use choco_model::{SolveOutcome, TimingBreakdown};
use choco_qsim::{Circuit, NoiseModel, TwoQubitBasis};
use std::fmt;
use std::time::Duration;

/// The quantum devices used in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Device {
    /// IBM Fez — 156-qubit Heron r2, native CZ.
    Fez,
    /// IBM Osaka — 127-qubit Eagle r3, single-direction ECR.
    Osaka,
    /// IBM Sherbrooke — 127-qubit Eagle r3, single-direction ECR.
    Sherbrooke,
}

impl Device {
    /// All three devices in the paper's order.
    pub const ALL: [Device; 3] = [Device::Fez, Device::Osaka, Device::Sherbrooke];

    /// The calibrated model for this device.
    pub fn model(&self) -> DeviceModel {
        match self {
            // Heron r2: CZ basis gate with 99.7% fidelity (paper §V-A),
            // ~660 ns two-qubit gates, fast single-qubit layer.
            Device::Fez => DeviceModel {
                device: *self,
                name: "ibm_fez",
                qubits: 156,
                two_qubit: TwoQubitBasis::Cz,
                error_1q: 3e-4,
                error_2q: 3e-3,
                readout_error: 1.5e-2,
                time_1q: Duration::from_nanos(60),
                time_2q: Duration::from_nanos(660),
                readout_time: Duration::from_nanos(1500),
                per_shot_overhead: Duration::from_micros(250),
            },
            // Eagle r3: ECR at 99.3%; a CZ costs ~3 ECR pulses, so the
            // effective two-qubit error and duration are higher.
            Device::Osaka => DeviceModel {
                device: *self,
                name: "ibm_osaka",
                qubits: 127,
                two_qubit: TwoQubitBasis::Cx,
                error_1q: 4e-4,
                error_2q: 7e-3,
                readout_error: 2.0e-2,
                time_1q: Duration::from_nanos(60),
                time_2q: Duration::from_nanos(1060),
                readout_time: Duration::from_nanos(4000),
                per_shot_overhead: Duration::from_micros(250),
            },
            Device::Sherbrooke => DeviceModel {
                device: *self,
                name: "ibm_sherbrooke",
                qubits: 127,
                two_qubit: TwoQubitBasis::Cx,
                error_1q: 3.5e-4,
                error_2q: 6.5e-3,
                readout_error: 1.8e-2,
                time_1q: Duration::from_nanos(60),
                time_2q: Duration::from_nanos(980),
                readout_time: Duration::from_nanos(4000),
                per_shot_overhead: Duration::from_micros(250),
            },
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.model().name)
    }
}

/// Calibrated properties of one device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    /// Which device this models.
    pub device: Device,
    /// IBM-style backend name.
    pub name: &'static str,
    /// Physical qubit count.
    pub qubits: usize,
    /// Native two-qubit gate.
    pub two_qubit: TwoQubitBasis,
    /// Pauli error rate after a single-qubit gate.
    pub error_1q: f64,
    /// Pauli error rate (per qubit) after a two-qubit gate.
    pub error_2q: f64,
    /// Readout bit-flip probability.
    pub readout_error: f64,
    /// Single-qubit gate duration.
    pub time_1q: Duration,
    /// Two-qubit gate duration.
    pub time_2q: Duration,
    /// Measurement duration.
    pub readout_time: Duration,
    /// Fixed per-shot overhead (reset, delays, classical I/O amortized).
    pub per_shot_overhead: Duration,
}

impl DeviceModel {
    /// The stochastic noise model for the Monte-Carlo simulator.
    pub fn noise(&self) -> NoiseModel {
        NoiseModel::new(self.error_1q, self.error_2q, self.readout_error)
    }

    /// Estimated wall time to run a (transpiled, basic-gate) circuit once.
    ///
    /// Depth-based: single- and two-qubit layers are charged by the ASAP
    /// depth split, plus readout.
    pub fn circuit_time(&self, circuit: &Circuit) -> Duration {
        let depth = circuit.depth() as u32;
        let two_q = circuit.multi_qubit_gate_count();
        let total_gates = circuit.len().max(1);
        // Fraction of layers dominated by a two-qubit gate.
        let two_q_layer_share = (two_q as f64 / total_gates as f64).min(1.0);
        let two_q_layers = (depth as f64 * two_q_layer_share).ceil() as u32;
        let one_q_layers = depth.saturating_sub(two_q_layers);
        self.time_2q * two_q_layers + self.time_1q * one_q_layers + self.readout_time
    }

    /// Estimated wall time for `shots` executions of a circuit.
    pub fn execution_time(&self, circuit: &Circuit, shots: u64) -> Duration {
        (self.circuit_time(circuit) + self.per_shot_overhead) * shots as u32
    }
}

/// End-to-end latency estimation in the paper's decomposition (Fig. 11b):
/// compilation + `iterations × (quantum execution + classical update)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Shots per optimizer iteration (the paper's runs use ~1000).
    pub shots_per_iteration: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            shots_per_iteration: 1000,
        }
    }
}

/// The estimated latency breakdown of one solver run on one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyEstimate {
    /// Compilation (measured on the host, taken from the solver timing).
    pub compile: Duration,
    /// Quantum execution across all iterations.
    pub quantum: Duration,
    /// Classical optimizer time (measured on the host).
    pub classical: Duration,
}

impl LatencyEstimate {
    /// Total end-to-end latency.
    pub fn total(&self) -> Duration {
        self.compile + self.quantum + self.classical
    }
}

impl LatencyModel {
    /// Estimates the end-to-end latency of a finished solve on `device`,
    /// combining the *measured* compile/classical times with the
    /// *modelled* quantum execution time of the final circuit.
    ///
    /// `transpiled` must be the basic-gate circuit actually deployed.
    pub fn estimate(
        &self,
        device: &DeviceModel,
        transpiled: &Circuit,
        outcome_timing: &TimingBreakdown,
        iterations: usize,
        final_shots: u64,
    ) -> LatencyEstimate {
        let per_iteration = device.execution_time(transpiled, self.shots_per_iteration);
        let final_run = device.execution_time(transpiled, final_shots);
        LatencyEstimate {
            compile: outcome_timing.compile,
            quantum: per_iteration * iterations as u32 + final_run,
            classical: outcome_timing.classical,
        }
    }

    /// Convenience: estimate from a [`SolveOutcome`]'s recorded stats when
    /// the transpiled circuit itself is not at hand. Depth and gate counts
    /// from [`choco_model::CircuitStats`] are used to synthesize an
    /// equivalent-latency circuit model.
    pub fn estimate_from_outcome(
        &self,
        device: &DeviceModel,
        outcome: &SolveOutcome,
        final_shots: u64,
    ) -> LatencyEstimate {
        let depth = outcome
            .circuit
            .transpiled_depth
            .unwrap_or(outcome.circuit.logical_depth) as u32;
        let two_q = outcome.circuit.two_qubit_gates.unwrap_or(0);
        let gates = outcome
            .circuit
            .transpiled_gates
            .unwrap_or(depth as usize)
            .max(1);
        let two_q_share = (two_q as f64 / gates as f64).min(1.0);
        let two_q_layers = (depth as f64 * two_q_share).ceil() as u32;
        let one_q_layers = depth.saturating_sub(two_q_layers);
        let circuit_time =
            device.time_2q * two_q_layers + device.time_1q * one_q_layers + device.readout_time;
        let per_shot = circuit_time + device.per_shot_overhead;
        LatencyEstimate {
            compile: outcome.timing.compile,
            quantum: per_shot * (self.shots_per_iteration as u32) * (outcome.iterations as u32)
                + per_shot * final_shots as u32,
            classical: outcome.timing.classical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_devices_have_distinct_profiles() {
        let fez = Device::Fez.model();
        let osaka = Device::Osaka.model();
        assert_eq!(fez.two_qubit, TwoQubitBasis::Cz);
        assert_eq!(osaka.two_qubit, TwoQubitBasis::Cx);
        // Fez is QAOA-friendly: lower 2q error (paper §V-A).
        assert!(fez.error_2q < osaka.error_2q);
        assert!(fez.time_2q < osaka.time_2q);
    }

    #[test]
    fn noise_model_rates_match() {
        let m = Device::Sherbrooke.model();
        let n = m.noise();
        assert_eq!(n.p1, m.error_1q);
        assert_eq!(n.p2, m.error_2q);
        assert_eq!(n.readout, m.readout_error);
    }

    #[test]
    fn deeper_circuits_take_longer() {
        let m = Device::Fez.model();
        let mut shallow = Circuit::new(2);
        shallow.h(0).cx(0, 1);
        let mut deep = Circuit::new(2);
        for _ in 0..50 {
            deep.cx(0, 1);
        }
        assert!(m.circuit_time(&deep) > m.circuit_time(&shallow));
        assert!(m.execution_time(&shallow, 100) > m.circuit_time(&shallow));
    }

    #[test]
    fn latency_scales_with_iterations() {
        let m = Device::Fez.model();
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let timing = TimingBreakdown::default();
        let lm = LatencyModel::default();
        let e10 = lm.estimate(&m, &c, &timing, 10, 1000);
        let e30 = lm.estimate(&m, &c, &timing, 30, 1000);
        assert!(e30.quantum > e10.quantum);
        assert_eq!(e30.total(), e30.compile + e30.quantum + e30.classical);
    }

    #[test]
    fn estimate_from_outcome_uses_recorded_stats() {
        use choco_model::{CircuitStats, SolveOutcome};
        use choco_qsim::Counts;
        let outcome = SolveOutcome {
            counts: Counts::new(),
            cost_history: vec![],
            iterations: 20,
            circuit: CircuitStats {
                qubits: 5,
                logical_depth: 10,
                transpiled_depth: Some(100),
                transpiled_gates: Some(300),
                two_qubit_gates: Some(120),
            },
            timing: TimingBreakdown::default(),
        };
        let est =
            LatencyModel::default().estimate_from_outcome(&Device::Fez.model(), &outcome, 10_000);
        assert!(est.quantum > Duration::ZERO);
        // Sherbrooke's slower 2q gates make it slower end-to-end.
        let est_sb = LatencyModel::default().estimate_from_outcome(
            &Device::Sherbrooke.model(),
            &outcome,
            10_000,
        );
        assert!(est_sb.quantum > est.quantum);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Device::Fez), "ibm_fez");
        assert_eq!(Device::ALL.len(), 3);
    }
}
