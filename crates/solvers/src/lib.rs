//! # choco-solvers
//!
//! The three baseline solvers the Choco-Q paper compares against
//! (Table I/II):
//!
//! * [`PenaltyQaoaSolver`] — soft constraints as penalty terms \[44\]
//!   (the paper pairs it with FrozenQubits \[4\] / Red-QAOA \[45\] tuning; here
//!   the penalty weight and optimizer budget play that role).
//! * [`CyclicQaoaSolver`] — hard constraints via the XY ring (cyclic)
//!   driver Hamiltonian \[47\]; only disjoint summation-format equations can
//!   be encoded, everything else degrades to penalties — reproducing the
//!   in-constraints-rate gap of Table II.
//! * [`HeaSolver`] — the hardware-efficient ansatz \[28\], a problem-agnostic
//!   variational circuit with penalty objective.
//!
//! All three implement [`choco_model::Solver`] and share the
//! [`QaoaConfig`] / variational-loop machinery in [`shared`].

#![warn(missing_docs)]

mod annealing;
mod cyclic;
mod grover;
mod hea;
mod penalty;
pub mod shared;

pub use annealing::{AnnealingConfig, AnnealingSolver};
pub use cyclic::{CyclicEncoding, CyclicQaoaSolver};
pub use grover::{GroverConfig, GroverOutcome, GroverSolver};
pub use hea::HeaSolver;
pub use penalty::PenaltyQaoaSolver;
pub use shared::{QaoaConfig, MAX_SIM_QUBITS};
