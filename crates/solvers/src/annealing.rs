//! Simulated quantum annealing — the pre-QAOA baseline (§VI-A of the
//! paper: "the first quantum approach to this problem is quantum
//! annealing \[40\]").
//!
//! Adiabatic evolution under `H(s) = (1−s)·H_mix + s·H_problem` with
//! `H_mix = −Σ X_i` and `H_problem` the penalty QUBO, discretized with a
//! first-order Trotter schedule:
//!
//! ```text
//! |ψ⟩ = Π_k  e^{-i·dt·(1−s_k)·H_mix} · e^{-i·dt·s_k·H_problem} |+…+⟩
//! ```
//!
//! There is no variational loop — the schedule *is* the algorithm — which
//! reproduces the weakness the paper cites: constraints are only soft
//! (through the penalty) and good success needs long evolution times.

use crate::shared::{
    check_size, circuit_stats, reject_inequalities, sample_transpiled_noisy, QaoaConfig,
};
use choco_model::{Problem, SolveOutcome, Solver, SolverError, TimingBreakdown};
use choco_qsim::{Circuit, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for [`AnnealingSolver`].
#[derive(Clone, Debug)]
pub struct AnnealingConfig {
    /// Total annealing time `T` (in units of 1/energy).
    pub total_time: f64,
    /// Trotter steps along the schedule.
    pub steps: usize,
    /// Measurement shots.
    pub shots: u64,
    /// Penalty weight λ for the constraints.
    pub penalty: f64,
    /// Sampling seed.
    pub seed: u64,
    /// Optional noisy final sampling (as in the other solvers).
    pub noise: Option<choco_qsim::NoiseModel>,
    /// Monte-Carlo trajectories for noisy sampling.
    pub noise_trajectories: u32,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            total_time: 12.0,
            steps: 64,
            shots: 10_000,
            penalty: 10.0,
            seed: 42,
            noise: None,
            noise_trajectories: 30,
        }
    }
}

/// The simulated quantum annealer.
///
/// # Examples
///
/// ```
/// use choco_model::{Problem, Solver};
/// use choco_solvers::{AnnealingConfig, AnnealingSolver};
///
/// let p = Problem::builder(2)
///     .minimize()
///     .linear(0, 1.0)
///     .linear(1, 2.0)
///     .equality([(0, 1), (1, 1)], 1)
///     .build()
///     .unwrap();
/// let outcome = AnnealingSolver::new(AnnealingConfig::default()).solve(&p).unwrap();
/// assert_eq!(outcome.counts.shots(), 10_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AnnealingSolver {
    config: AnnealingConfig,
}

impl AnnealingSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: AnnealingConfig) -> Self {
        AnnealingSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AnnealingConfig {
        &self.config
    }

    /// Builds the full annealing circuit for a problem.
    pub fn build_circuit(&self, problem: &Problem) -> Circuit {
        let n = problem.n_vars();
        let poly = Arc::new(problem.penalty_poly(self.config.penalty));
        let dt = self.config.total_time / self.config.steps as f64;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q); // ground state of −Σ X_i
        }
        for k in 1..=self.config.steps {
            let s = k as f64 / (self.config.steps + 1) as f64;
            c.diag(poly.clone(), dt * s);
            // e^{-i·dt·(1−s)·(−Σ X_i)} = Π RX(−2·dt·(1−s))
            for q in 0..n {
                c.rx(q, -2.0 * dt * (1.0 - s));
            }
        }
        c
    }
}

impl Solver for AnnealingSolver {
    fn name(&self) -> &str {
        "annealing"
    }

    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError> {
        reject_inequalities(problem, "annealing")?;
        let n = problem.n_vars();
        check_size(n)?;
        let compile_start = Instant::now();
        let circuit = self.build_circuit(problem);
        let compile = compile_start.elapsed();

        let execute_start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let counts = match &self.config.noise {
            None => StateVector::run(&circuit).sample(self.config.shots, &mut rng),
            Some(noise) => sample_transpiled_noisy(
                choco_qsim::SimConfig::default(),
                &circuit,
                noise,
                self.config.shots,
                self.config.noise_trajectories,
                &mut rng,
            )?,
        };
        let execute = execute_start.elapsed();

        let stats = circuit_stats(&circuit, vec![], false)?;
        Ok(SolveOutcome {
            counts,
            cost_history: Vec::new(),
            iterations: 0, // schedule-driven: no classical loop
            circuit: stats,
            timing: TimingBreakdown {
                compile,
                execute,
                classical: std::time::Duration::ZERO,
            },
        })
    }
}

/// Convenience: an annealing config derived from a [`QaoaConfig`]'s shot /
/// penalty / seed settings.
impl From<&QaoaConfig> for AnnealingConfig {
    fn from(q: &QaoaConfig) -> Self {
        AnnealingConfig {
            shots: q.shots,
            penalty: q.penalty,
            seed: q.seed,
            noise: q.noise,
            noise_trajectories: q.noise_trajectories,
            ..AnnealingConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    fn small_problem() -> Problem {
        Problem::builder(3)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .equality([(0, 1), (1, 1), (2, 1)], 2)
            .build()
            .unwrap()
    }

    #[test]
    fn anneal_finds_reasonable_solutions() {
        let p = small_problem();
        let opt = solve_exact(&p).unwrap();
        let outcome = AnnealingSolver::new(AnnealingConfig {
            total_time: 20.0,
            steps: 128,
            ..AnnealingConfig::default()
        })
        .solve(&p)
        .unwrap();
        let m = outcome.metrics_with(&p, &opt);
        // Adiabatic evolution toward the penalty ground state: the optimum
        // carries non-trivial probability, but (soft constraints!) the
        // in-constraints rate is below Choco-Q's 100%.
        assert!(m.success_rate > 0.05, "success = {}", m.success_rate);
        assert!(m.in_constraints_rate > m.success_rate - 1e-12);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn longer_schedules_improve_adiabaticity() {
        let p = small_problem();
        let opt = solve_exact(&p).unwrap();
        let short = AnnealingSolver::new(AnnealingConfig {
            total_time: 1.0,
            steps: 8,
            ..AnnealingConfig::default()
        })
        .solve(&p)
        .unwrap()
        .metrics_with(&p, &opt);
        let long = AnnealingSolver::new(AnnealingConfig {
            total_time: 24.0,
            steps: 192,
            ..AnnealingConfig::default()
        })
        .solve(&p)
        .unwrap()
        .metrics_with(&p, &opt);
        assert!(
            long.success_rate > short.success_rate,
            "long {} vs short {}",
            long.success_rate,
            short.success_rate
        );
    }

    #[test]
    fn circuit_shape_matches_schedule() {
        let p = small_problem();
        let solver = AnnealingSolver::new(AnnealingConfig {
            steps: 10,
            ..AnnealingConfig::default()
        });
        let c = solver.build_circuit(&p);
        let counts = c.gate_counts();
        assert_eq!(counts["h"], 3);
        assert_eq!(counts["diag"], 10);
        assert_eq!(counts["rx"], 30);
    }

    #[test]
    fn config_from_qaoa() {
        let q = QaoaConfig {
            shots: 1234,
            penalty: 5.0,
            ..QaoaConfig::default()
        };
        let a = AnnealingConfig::from(&q);
        assert_eq!(a.shots, 1234);
        assert_eq!(a.penalty, 5.0);
    }
}
