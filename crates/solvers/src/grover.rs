//! Grover adaptive search (GAS) \[20\] — the amplitude-amplification
//! baseline from the paper's related work (§VI-A).
//!
//! GAS wraps Grover search in a threshold loop: the oracle marks feasible
//! states whose objective beats the best value found so far, a
//! Boyer–Brassard–Høyer schedule picks the Grover iteration count without
//! knowing how many states are marked, and each measurement either
//! improves the threshold or shrinks the schedule.
//!
//! The paper's §VI-A criticism is reproduced measurably: the *selection*
//! (feasibility) predicate makes the marked fraction tiny, so the number
//! of oracle calls grows quickly — compare [`GroverOutcome::oracle_calls`]
//! against Choco-Q's iteration counts.
//!
//! The Grover operator is applied exactly on the state vector (oracle
//! phase flip + inversion about the mean); the paper itself concedes the
//! selection circuit "is too complex to deploy on hardware", so a
//! gate-level lowering is intentionally out of scope.

use crate::shared::check_size;
use choco_mathkit::Complex64;
use choco_mathkit::SplitMix64;
use choco_model::{CircuitStats, Problem, SolveOutcome, Solver, SolverError, TimingBreakdown};
use choco_qsim::{Counts, StateVector};
use std::time::Instant;

/// Configuration for [`GroverSolver`].
#[derive(Clone, Debug)]
pub struct GroverConfig {
    /// Maximum threshold-improvement rounds.
    pub max_rounds: usize,
    /// BBHT schedule growth factor (classically 8/7–1.5).
    pub schedule_growth: f64,
    /// Measurement shots for the final histogram.
    pub shots: u64,
    /// PRNG seed (schedule draws + sampling).
    pub seed: u64,
}

impl Default for GroverConfig {
    fn default() -> Self {
        GroverConfig {
            max_rounds: 24,
            schedule_growth: 1.34,
            shots: 10_000,
            seed: 42,
        }
    }
}

/// Extra observables of a GAS run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroverOutcome {
    /// Total Grover-operator applications (each is one oracle call).
    pub oracle_calls: u64,
    /// Threshold improvements achieved.
    pub improvements: u32,
}

/// The Grover-adaptive-search solver.
///
/// # Examples
///
/// ```
/// use choco_model::{Problem, Solver};
/// use choco_solvers::{GroverConfig, GroverSolver};
///
/// let p = Problem::builder(3)
///     .minimize()
///     .linear(0, 1.0)
///     .linear(1, 2.0)
///     .linear(2, 3.0)
///     .equality([(0, 1), (1, 1), (2, 1)], 1)
///     .build()
///     .unwrap();
/// let outcome = GroverSolver::new(GroverConfig::default()).solve(&p).unwrap();
/// assert!(outcome.counts.shots() > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GroverSolver {
    config: GroverConfig,
}

impl GroverSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: GroverConfig) -> Self {
        GroverSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GroverConfig {
        &self.config
    }

    /// Observables of the last run are returned alongside the outcome by
    /// [`GroverSolver::solve_with_stats`].
    pub fn solve_with_stats(
        &self,
        problem: &Problem,
    ) -> Result<(SolveOutcome, GroverOutcome), SolverError> {
        let n = problem.n_vars();
        check_size(n)?;
        let start = Instant::now();
        let dim = 1usize << n;
        let cost_table = problem.cost_table();
        let feasible: Vec<bool> = (0..dim as u64).map(|b| problem.is_feasible(b)).collect();
        if !feasible.iter().any(|&f| f) {
            return Err(SolverError::Infeasible);
        }

        let mut rng = SplitMix64::new(self.config.seed);
        let mut stats = GroverOutcome::default();
        // Start from a random feasible sample of the uniform distribution.
        let mut threshold = f64::INFINITY;
        let mut schedule_max = 1.0f64;

        for _ in 0..self.config.max_rounds {
            // Oracle: feasible AND strictly better than the threshold.
            let marked: Vec<bool> = (0..dim)
                .map(|i| feasible[i] && cost_table[i] < threshold - 1e-12)
                .collect();
            if !marked.iter().any(|&m| m) {
                break; // threshold is optimal
            }
            // BBHT: pick a random iteration count below the schedule cap.
            let iterations = 1 + (rng.next_f64() * schedule_max) as u64;
            let mut state = uniform_state(n);
            for _ in 0..iterations {
                grover_iterate(&mut state, &marked);
            }
            stats.oracle_calls += iterations;
            // One measurement decides this round.
            let measured = sample_one(&state, &mut rng);
            if feasible[measured as usize] && cost_table[measured as usize] < threshold - 1e-12 {
                threshold = cost_table[measured as usize];
                stats.improvements += 1;
                schedule_max = 1.0;
            } else {
                schedule_max =
                    (schedule_max * self.config.schedule_growth).min((dim as f64).sqrt() * 2.0);
            }
        }

        // Final histogram: the amplified state for the final threshold
        // (re-amplified at the last successful schedule) — this is what a
        // user would measure after the adaptive loop terminates.
        // No improvement ever found ⇒ threshold is +∞ and every feasible
        // state stays marked.
        let marked: Vec<bool> = (0..dim)
            .map(|i| feasible[i] && cost_table[i] <= threshold + 1e-12)
            .collect();
        let mut state = uniform_state(n);
        // Amplify near the π/4·√(N/M) optimum for the final marked set.
        let m = marked.iter().filter(|&&x| x).count().max(1);
        let turns = ((std::f64::consts::FRAC_PI_4) * (dim as f64 / m as f64).sqrt()).floor() as u64;
        for _ in 0..turns.max(1) {
            grover_iterate(&mut state, &marked);
        }
        stats.oracle_calls += turns.max(1);

        let mut counts = Counts::new();
        for _ in 0..self.config.shots {
            counts.record(sample_one(&state, &mut rng));
        }

        let outcome = SolveOutcome {
            counts,
            cost_history: Vec::new(),
            iterations: stats.oracle_calls as usize,
            circuit: CircuitStats {
                qubits: n,
                logical_depth: 0,
                transpiled_depth: None, // §VI-A: selection circuit undeployable
                transpiled_gates: None,
                two_qubit_gates: None,
            },
            timing: TimingBreakdown {
                compile: std::time::Duration::ZERO,
                execute: start.elapsed(),
                classical: std::time::Duration::ZERO,
            },
        };
        Ok((outcome, stats))
    }
}

fn uniform_state(n: usize) -> StateVector {
    let dim = 1usize << n;
    let amp = Complex64::from_re(1.0 / (dim as f64).sqrt());
    StateVector::from_amplitudes(vec![amp; dim])
}

/// One Grover iteration: oracle phase flip on marked states, then
/// inversion about the mean.
fn grover_iterate(state: &mut StateVector, marked: &[bool]) {
    let dim = state.amplitudes().len();
    let mut amps: Vec<Complex64> = state.amplitudes().to_vec();
    for (a, &m) in amps.iter_mut().zip(marked.iter()) {
        if m {
            *a = -*a;
        }
    }
    let mean = amps.iter().copied().sum::<Complex64>() / dim as f64;
    for a in amps.iter_mut() {
        *a = mean.scale(2.0) - *a;
    }
    *state = StateVector::from_amplitudes(amps);
}

fn sample_one(state: &StateVector, rng: &mut SplitMix64) -> u64 {
    let r = rng.next_f64();
    let mut acc = 0.0;
    for (i, a) in state.amplitudes().iter().enumerate() {
        acc += a.norm_sqr();
        if r < acc {
            return i as u64;
        }
    }
    state.amplitudes().len() as u64 - 1
}

impl Solver for GroverSolver {
    fn name(&self) -> &str {
        "grover-as"
    }

    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError> {
        self.solve_with_stats(problem).map(|(o, _)| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    fn small_problem() -> Problem {
        Problem::builder(4)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .linear(3, 1.0)
            .equality([(0, 1), (2, -1)], 0)
            .equality([(0, 1), (1, 1), (3, 1)], 1)
            .build()
            .unwrap()
    }

    #[test]
    fn grover_finds_the_optimum_with_amplification() {
        let p = small_problem();
        let opt = solve_exact(&p).unwrap();
        let (outcome, stats) = GroverSolver::new(GroverConfig::default())
            .solve_with_stats(&p)
            .unwrap();
        let m = outcome.metrics_with(&p, &opt);
        assert!(m.success_rate > 0.3, "success = {}", m.success_rate);
        assert!(stats.oracle_calls > 0);
    }

    #[test]
    fn oracle_calls_exceed_choco_iterations_shape() {
        // The §VI-A criticism: GAS needs many oracle calls because the
        // feasible-and-better fraction is tiny.
        let p = small_problem();
        let (_, stats) = GroverSolver::new(GroverConfig::default())
            .solve_with_stats(&p)
            .unwrap();
        assert!(
            stats.oracle_calls >= 3,
            "oracle calls = {}",
            stats.oracle_calls
        );
    }

    #[test]
    fn grover_iteration_amplifies_marked_state() {
        // Classic 2-qubit Grover: one marked state out of 4 reaches
        // probability 1 after a single iteration.
        let mut state = uniform_state(2);
        let marked = vec![false, false, true, false];
        grover_iterate(&mut state, &marked);
        assert!((state.probability(2) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn infeasible_problem_rejected() {
        let p = Problem::builder(2)
            .equality([(0, 1), (1, 1)], 3)
            .build()
            .unwrap();
        assert_eq!(
            GroverSolver::default().solve(&p).unwrap_err(),
            SolverError::Infeasible
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_problem();
        let a = GroverSolver::new(GroverConfig::default())
            .solve(&p)
            .unwrap();
        let b = GroverSolver::new(GroverConfig::default())
            .solve(&p)
            .unwrap();
        assert_eq!(a.counts, b.counts);
    }
}
