//! Hardware-efficient ansatz (HEA) \[28\] — the non-QAOA baseline.
//!
//! The Kandala-style circuit: alternating layers of per-qubit `RY`
//! rotations and a CZ entangling ladder, with one final rotation layer.
//! The circuit structure carries no problem information; constraints are
//! handled softly by the same penalty objective as penalty-QAOA. As the
//! paper notes (§VI-A), this "cannot always converge into an optimal
//! solution since the circuit structure is not specialized".

use crate::shared::{
    check_size, circuit_stats, reject_inequalities, variational_loop, CostSpec, QaoaConfig,
};
use choco_model::{Problem, SolveOutcome, Solver, SolverError};
use choco_qsim::Circuit;
use choco_qsim::SimWorkspace;
use std::time::Instant;

/// The hardware-efficient ansatz solver.
#[derive(Clone, Debug, Default)]
pub struct HeaSolver {
    config: QaoaConfig,
}

impl HeaSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: QaoaConfig) -> Self {
        HeaSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &QaoaConfig {
        &self.config
    }

    /// Number of variational parameters: one RY per qubit per rotation
    /// layer, `layers + 1` rotation layers.
    pub fn n_params(n_vars: usize, layers: usize) -> usize {
        n_vars * (layers + 1)
    }
}

impl Solver for HeaSolver {
    fn name(&self) -> &str {
        "hea"
    }

    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError> {
        let mut workspace = SimWorkspace::new(self.config.sim);
        self.solve_with_workspace(problem, &mut workspace)
    }
}

impl HeaSolver {
    /// [`Solver::solve`] with a caller-owned [`SimWorkspace`], reused
    /// across optimizer iterations and repeated solves (the batch runner's
    /// per-worker workspaces go through this entry point).
    pub fn solve_with_workspace(
        &self,
        problem: &Problem,
        workspace: &mut SimWorkspace,
    ) -> Result<SolveOutcome, SolverError> {
        reject_inequalities(problem, "hea")?;
        let n = problem.n_vars();
        check_size(n)?;
        let compile_start = Instant::now();
        let poly = problem.penalty_poly(self.config.penalty);
        let cost_values = poly.values_table(1 << n);
        let layers = self.config.layers;
        let compile = compile_start.elapsed();

        let build = |params: &[f64]| -> Circuit {
            let mut c = Circuit::new(n);
            for l in 0..layers {
                for q in 0..n {
                    c.ry(q, params[l * n + q]);
                }
                for q in 0..n.saturating_sub(1) {
                    c.cz(q, q + 1);
                }
            }
            for q in 0..n {
                c.ry(q, params[layers * n + q]);
            }
            c
        };

        // Small nonzero start breaks the RY(0) saddle.
        let x0 = vec![0.3; Self::n_params(n, layers)];
        let loop_config = QaoaConfig {
            sim: *workspace.config(),
            ..self.config.clone()
        };
        let result = variational_loop(
            n,
            build,
            &CostSpec::Table(&cost_values),
            &x0,
            &loop_config,
            workspace,
        );
        if result.deadline_exceeded {
            return Err(SolverError::Timeout);
        }
        let circuit = circuit_stats(&result.final_circuit, vec![], self.config.transpiled_stats)?;
        let mut timing = result.timing;
        timing.compile = compile;
        Ok(SolveOutcome {
            counts: result.counts,
            cost_history: result.cost_history,
            iterations: result.iterations,
            circuit,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> Problem {
        Problem::builder(3)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .equality([(0, 1), (1, 1), (2, 1)], 2)
            .build()
            .unwrap()
    }

    #[test]
    fn solves_small_problem() {
        let outcome = HeaSolver::new(QaoaConfig::fast_test())
            .solve(&small_problem())
            .unwrap();
        assert_eq!(outcome.counts.shots(), 2000);
        let m = outcome.metrics(&small_problem()).unwrap();
        assert!(m.in_constraints_rate >= 0.0);
        assert!(!outcome.cost_history.is_empty());
    }

    #[test]
    fn param_count_formula() {
        assert_eq!(HeaSolver::n_params(4, 3), 16);
        assert_eq!(HeaSolver::n_params(3, 2), 9);
    }

    #[test]
    fn hea_depth_is_shallow_compared_to_qaoa() {
        // The paper notes HEA's shallow depth (Table II's depth column).
        let outcome = HeaSolver::new(QaoaConfig {
            transpiled_stats: true,
            ..QaoaConfig::fast_test()
        })
        .solve(&small_problem())
        .unwrap();
        let depth = outcome.circuit.transpiled_depth.unwrap();
        // 2 layers × (RY + CZ ladder) + final RY on 3 qubits: shallow.
        assert!(depth < 40, "depth = {depth}");
    }

    #[test]
    fn optimizer_reduces_cost() {
        let outcome = HeaSolver::new(QaoaConfig::fast_test())
            .solve(&small_problem())
            .unwrap();
        let first = outcome.cost_history.first().unwrap();
        let last = outcome.cost_history.last().unwrap();
        assert!(last <= first);
    }

    #[test]
    fn rejects_oversized() {
        let p = Problem::builder(28).linear(0, 1.0).build().unwrap();
        assert!(matches!(
            HeaSolver::default().solve(&p).unwrap_err(),
            SolverError::TooLarge { .. }
        ));
    }
}
