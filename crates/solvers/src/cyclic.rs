//! Cyclic-Hamiltonian QAOA (the hard-constraint baseline \[47\]).
//!
//! Encodes *summation-format* constraints (all coefficients `+1` or all
//! `-1`, e.g. `x1 + x2 + x4 = 1`) into the driver Hamiltonian as an XY ring
//! mixer (Eq. (2) of the paper):
//!
//! ```text
//! H_d = Σ_i X_i X_{i+1} + Y_i Y_{i+1}    over the constraint's variables
//! ```
//!
//! which preserves the Hamming weight of the involved qubits. Limitations
//! faithfully reproduced from the paper's analysis (§III):
//!
//! * only summation-format equations can be encoded;
//! * two encoded equations cannot share variables (both rings would have to
//!   own the qubit) — overlapping ones fall back to penalty terms;
//! * everything unencoded is handled softly, so the in-constraints rate
//!   degrades exactly the way Table II shows.

use crate::shared::{
    check_size, circuit_stats, ramp_initial_params, reject_inequalities, variational_loop,
    CostSpec, QaoaConfig,
};
use choco_mathkit::{LinEq, LinSystem};
use choco_model::{Problem, SolveOutcome, Solver, SolverError};
use choco_qsim::Circuit;
use choco_qsim::SimWorkspace;
use std::time::Instant;

/// The cyclic-Hamiltonian QAOA solver.
#[derive(Clone, Debug, Default)]
pub struct CyclicQaoaSolver {
    config: QaoaConfig,
}

/// Which constraints the encoder managed to make *hard*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CyclicEncoding {
    /// Indices (into `problem.constraints().eqs()`) of ring-encoded
    /// equations.
    pub encoded: Vec<usize>,
    /// Indices of equations left to the penalty term.
    pub soft: Vec<usize>,
}

impl CyclicQaoaSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: QaoaConfig) -> Self {
        CyclicQaoaSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &QaoaConfig {
        &self.config
    }

    /// Greedily selects the constraints the cyclic driver can encode:
    /// summation format, variable-disjoint from previously selected ones.
    pub fn plan_encoding(problem: &Problem) -> CyclicEncoding {
        let mut used = vec![false; problem.n_vars()];
        let mut encoded = Vec::new();
        let mut soft = Vec::new();
        for (idx, eq) in problem.constraints().eqs().iter().enumerate() {
            let disjoint = eq.variables().all(|v| !used[v]);
            if eq.is_summation_format() && disjoint && eq.terms.len() >= 2 {
                for v in eq.variables() {
                    used[v] = true;
                }
                encoded.push(idx);
            } else {
                soft.push(idx);
            }
        }
        CyclicEncoding { encoded, soft }
    }
}

impl Solver for CyclicQaoaSolver {
    fn name(&self) -> &str {
        "cyclic-qaoa"
    }

    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError> {
        let mut workspace = SimWorkspace::new(self.config.sim);
        self.solve_with_workspace(problem, &mut workspace)
    }
}

impl CyclicQaoaSolver {
    /// [`Solver::solve`] with a caller-owned [`SimWorkspace`], reused
    /// across optimizer iterations and repeated solves (the batch runner's
    /// per-worker workspaces go through this entry point).
    pub fn solve_with_workspace(
        &self,
        problem: &Problem,
        workspace: &mut SimWorkspace,
    ) -> Result<SolveOutcome, SolverError> {
        reject_inequalities(problem, "cyclic-qaoa")?;
        let n = problem.n_vars();
        check_size(n)?;
        let compile_start = Instant::now();

        let encoding = Self::plan_encoding(problem);
        if encoding.encoded.is_empty() {
            return Err(SolverError::Unsupported(
                "no disjoint summation-format constraint for the cyclic driver".into(),
            ));
        }

        // Ring mixers: consecutive pairs + closing pair per encoded equation.
        let mut rings: Vec<Vec<usize>> = Vec::new();
        for &idx in &encoding.encoded {
            let vars: Vec<usize> = problem.constraints().eqs()[idx].variables().collect();
            rings.push(vars);
        }

        // Initial state: a solution of the *encoded* equations (Fig. 2d),
        // extended by zeros elsewhere.
        let mut encoded_sys = LinSystem::new(n);
        for &idx in &encoding.encoded {
            let eq = &problem.constraints().eqs()[idx];
            encoded_sys.push(LinEq::new(eq.terms.to_vec(), eq.rhs));
        }
        let initial = encoded_sys
            .first_binary_solution()
            .ok_or(SolverError::Infeasible)?;

        // Soft part: objective + penalties for the *unencoded* constraints.
        let mut soft_poly = problem.cost_poly();
        {
            let mut soft_sys = Problem::builder(n);
            for &idx in &encoding.soft {
                let eq = &problem.constraints().eqs()[idx];
                soft_sys = soft_sys.equality(eq.terms.to_vec(), eq.rhs);
            }
            let soft_problem = soft_sys.build().map_err(|e| {
                SolverError::Encoding(format!("penalty sub-problem build failed: {e}"))
            })?;
            // The sub-problem has a zero objective, so its penalty_poly is
            // exactly the soft penalty terms.
            soft_poly.add_scaled(&soft_problem.penalty_poly(self.config.penalty), 1.0);
        }
        // Interned so equal-content polynomials share one `Arc` across
        // solves — keeps compact plans replayable cache-wide.
        let poly = workspace.intern_poly(soft_poly);
        let cost_values = poly.values_table(1 << n);
        let layers = self.config.layers;
        let compile = compile_start.elapsed();

        let build = |params: &[f64]| -> Circuit {
            let mut c = Circuit::new(n);
            c.load_bits(initial);
            for l in 0..layers {
                let gamma = params[2 * l];
                let beta = params[2 * l + 1];
                c.diag(poly.clone(), gamma);
                for ring in &rings {
                    for w in ring.windows(2) {
                        c.xy(w[0], w[1], beta);
                    }
                    if ring.len() > 2 {
                        c.xy(ring[ring.len() - 1], ring[0], beta);
                    }
                }
            }
            c
        };

        let loop_config = QaoaConfig {
            sim: *workspace.config(),
            ..self.config.clone()
        };
        let result = variational_loop(
            n,
            build,
            &CostSpec::Table(&cost_values),
            &ramp_initial_params(layers),
            &loop_config,
            workspace,
        );
        if result.deadline_exceeded {
            return Err(SolverError::Timeout);
        }
        let circuit = circuit_stats(&result.final_circuit, vec![], self.config.transpiled_stats)?;
        let mut timing = result.timing;
        timing.compile = compile;
        Ok(SolveOutcome {
            counts: result.counts,
            cost_history: result.cost_history,
            iterations: result.iterations,
            circuit,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    /// One summation constraint: the ring driver keeps it *hard*.
    fn summation_problem() -> Problem {
        Problem::builder(3)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 3.0)
            .linear(2, 2.0)
            .equality([(0, 1), (1, 1), (2, 1)], 1)
            .build()
            .unwrap()
    }

    #[test]
    fn encoding_plan_selects_disjoint_summations() {
        // eq0: summation; eq1: shares x1 with eq0 → soft; eq2: mixed signs → soft.
        let p = Problem::builder(5)
            .equality([(0, 1), (1, 1)], 1)
            .equality([(1, 1), (2, 1)], 1)
            .equality([(3, 1), (4, -1)], 0)
            .build()
            .unwrap();
        let plan = CyclicQaoaSolver::plan_encoding(&p);
        assert_eq!(plan.encoded, vec![0]);
        assert_eq!(plan.soft, vec![1, 2]);
    }

    #[test]
    fn hard_constraint_is_never_violated() {
        // The ring mixer preserves Hamming weight exactly, so every sampled
        // state satisfies the encoded constraint: this is the "hard
        // constraint" property of the driver-Hamiltonian approach.
        let p = summation_problem();
        let outcome = CyclicQaoaSolver::new(QaoaConfig::fast_test())
            .solve(&p)
            .unwrap();
        let m = outcome.metrics(&p).unwrap();
        assert!(
            (m.in_constraints_rate - 1.0).abs() < 1e-9,
            "ring driver must keep the summation constraint hard: {}",
            m.in_constraints_rate
        );
    }

    #[test]
    fn finds_good_solutions_on_its_home_turf() {
        let p = summation_problem();
        let opt = solve_exact(&p).unwrap();
        let outcome = CyclicQaoaSolver::new(QaoaConfig {
            layers: 3,
            max_iters: 100,
            ..QaoaConfig::fast_test()
        })
        .solve(&p)
        .unwrap();
        let p_opt: f64 = opt
            .solutions
            .iter()
            .map(|&s| outcome.counts.probability(s))
            .sum();
        assert!(p_opt > 0.2, "p(optimal) = {p_opt}");
    }

    #[test]
    fn mixed_sign_constraints_leak_probability() {
        // max 20·x0 s.t. x0 + x1 = 1 (ring-encodable) and x0 − x2 = 0
        // (mixed signs → soft). x2 has no mixer and freezes at the initial
        // value 0, so the reward pulls probability onto x0 = 1 where the
        // soft equation is violated — the Figure 1(a) leakage.
        let p = Problem::builder(3)
            .maximize()
            .linear(0, 20.0)
            .equality([(0, 1), (1, 1)], 1) // encodable ring
            .equality([(0, 1), (2, -1)], 0) // soft
            .build()
            .unwrap();
        let outcome = CyclicQaoaSolver::new(QaoaConfig {
            layers: 3,
            max_iters: 80,
            ..QaoaConfig::fast_test()
        })
        .solve(&p)
        .unwrap();
        let m = outcome.metrics(&p).unwrap();
        // The soft equation does not hold with certainty (Table II's
        // in-constraints gap) …
        assert!(
            m.in_constraints_rate < 1.0 - 1e-6,
            "in-constraints = {}",
            m.in_constraints_rate
        );
        // … and the true optimum x = (1,0,1) is unreachable because x2 is
        // frozen: success rate collapses.
        assert!(m.success_rate < 1e-9, "success = {}", m.success_rate);
        // But the ring constraint itself is exact:
        let ring_ok = outcome
            .counts
            .mass_where(|bits| (bits & 1) + ((bits >> 1) & 1) == 1);
        assert!((ring_ok - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unencodable_problem_is_rejected() {
        let p = Problem::builder(2)
            .equality([(0, 1), (1, -1)], 0)
            .build()
            .unwrap();
        let err = CyclicQaoaSolver::default().solve(&p).unwrap_err();
        assert!(matches!(err, SolverError::Unsupported(_)));
    }

    #[test]
    fn two_variable_ring_uses_single_pair() {
        let p = Problem::builder(2)
            .maximize()
            .linear(1, 1.0)
            .equality([(0, 1), (1, 1)], 1)
            .build()
            .unwrap();
        let outcome = CyclicQaoaSolver::new(QaoaConfig::fast_test())
            .solve(&p)
            .unwrap();
        let m = outcome.metrics(&p).unwrap();
        assert!((m.in_constraints_rate - 1.0).abs() < 1e-9);
        // optimum: x1 = 1 → bits 0b10
        assert!(outcome.counts.probability(0b10) > 0.3);
    }
}
