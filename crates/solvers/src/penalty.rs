//! Penalty-based QAOA (the soft-constraint baseline \[44\]).
//!
//! Constraints are folded into the objective as `λ·Σ_j (C_j x − c_j)²`,
//! then a vanilla QAOA runs: uniform superposition, alternating diagonal
//! evolution `e^{-iγ_l H_{o+p}}` and transverse-field mixer `RX(2β_l)`.
//!
//! This is the design Figure 1(a) criticizes: a weak penalty lets the state
//! drift out of the constraints, a strong one flattens the objective — both
//! visible in this implementation's metrics.

use crate::shared::{
    check_size, circuit_stats, ramp_initial_params, reject_inequalities, variational_loop,
    CostSpec, QaoaConfig,
};
use choco_model::{Problem, SolveOutcome, Solver, SolverError};
use choco_qsim::Circuit;
use choco_qsim::SimWorkspace;
use std::time::Instant;

/// The penalty-based QAOA solver.
///
/// # Examples
///
/// ```
/// use choco_model::{Problem, Solver};
/// use choco_solvers::{PenaltyQaoaSolver, QaoaConfig};
///
/// let p = Problem::builder(2)
///     .minimize()
///     .linear(0, 1.0)
///     .linear(1, 2.0)
///     .equality([(0, 1), (1, 1)], 1)
///     .build()
///     .unwrap();
/// let outcome = PenaltyQaoaSolver::new(QaoaConfig::fast_test()).solve(&p).unwrap();
/// assert_eq!(outcome.counts.shots(), 2000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PenaltyQaoaSolver {
    config: QaoaConfig,
}

impl PenaltyQaoaSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: QaoaConfig) -> Self {
        PenaltyQaoaSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &QaoaConfig {
        &self.config
    }
}

impl Solver for PenaltyQaoaSolver {
    fn name(&self) -> &str {
        "penalty-qaoa"
    }

    fn solve(&self, problem: &Problem) -> Result<SolveOutcome, SolverError> {
        let mut workspace = SimWorkspace::new(self.config.sim);
        self.solve_with_workspace(problem, &mut workspace)
    }
}

impl PenaltyQaoaSolver {
    /// [`Solver::solve`] with a caller-owned [`SimWorkspace`]: the
    /// amplitude buffer and cached diagonals live in `workspace` and are
    /// reused across optimizer iterations (and across repeated solves when
    /// the caller keeps the workspace around, e.g. the batch runner's
    /// per-worker workspaces).
    pub fn solve_with_workspace(
        &self,
        problem: &Problem,
        workspace: &mut SimWorkspace,
    ) -> Result<SolveOutcome, SolverError> {
        reject_inequalities(problem, "penalty-qaoa")?;
        let n = problem.n_vars();
        check_size(n)?;
        let compile_start = Instant::now();
        // Interned so equal-content polynomials share one `Arc` across
        // solves — keeps compact plans replayable cache-wide.
        let poly = workspace.intern_poly(problem.penalty_poly(self.config.penalty));
        let cost_values = poly.values_table(1 << n);
        let layers = self.config.layers;
        let compile = compile_start.elapsed();

        let build = |params: &[f64]| -> Circuit {
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.h(q);
            }
            for l in 0..layers {
                let gamma = params[2 * l];
                let beta = params[2 * l + 1];
                c.diag(poly.clone(), gamma);
                for q in 0..n {
                    c.rx(q, 2.0 * beta);
                }
            }
            c
        };

        // Follow the caller-owned workspace's engine config for every
        // kernel of this solve (noisy sampling included).
        let loop_config = QaoaConfig {
            sim: *workspace.config(),
            ..self.config.clone()
        };
        let result = variational_loop(
            n,
            build,
            &CostSpec::Table(&cost_values),
            &ramp_initial_params(layers),
            &loop_config,
            workspace,
        );
        if result.deadline_exceeded {
            return Err(SolverError::Timeout);
        }
        let circuit = circuit_stats(&result.final_circuit, vec![], self.config.transpiled_stats)?;
        let mut timing = result.timing;
        timing.compile = compile;
        Ok(SolveOutcome {
            counts: result.counts,
            cost_history: result.cost_history,
            iterations: result.iterations,
            circuit,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_model::solve_exact;

    fn small_problem() -> Problem {
        // max x0 + 2 x1 + 3 x2  s.t. x0 + x1 + x2 = 2 → optimum {0,1,1} = 5
        Problem::builder(3)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .linear(2, 3.0)
            .equality([(0, 1), (1, 1), (2, 1)], 2)
            .build()
            .unwrap()
    }

    #[test]
    fn native_inequality_instance_is_rejected_not_mis_solved() {
        // A `≤` row is invisible to the penalty Hamiltonian; solving would
        // silently optimize the unconstrained problem.
        let p = Problem::builder(3)
            .maximize()
            .linear(0, 1.0)
            .linear(1, 2.0)
            .less_equal([(0, 1), (1, 2), (2, 2)], 3)
            .build()
            .unwrap();
        let err = PenaltyQaoaSolver::new(QaoaConfig::fast_test())
            .solve(&p)
            .unwrap_err();
        match err {
            SolverError::Unsupported(msg) => {
                assert!(msg.contains("penalty-qaoa"), "{msg}");
                assert!(msg.contains("slack"), "{msg}");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn solves_and_reports_metrics() {
        let solver = PenaltyQaoaSolver::new(QaoaConfig::fast_test());
        let outcome = solver.solve(&small_problem()).unwrap();
        let metrics = outcome.metrics(&small_problem()).unwrap();
        // Soft constraints: some probability mass lands in constraints, but
        // (characteristically for the penalty method) not all of it.
        assert!(metrics.in_constraints_rate > 0.0);
        assert!(metrics.in_constraints_rate <= 1.0);
        assert!(outcome.iterations > 0);
        assert!(!outcome.cost_history.is_empty());
    }

    #[test]
    fn cost_history_improves() {
        let solver = PenaltyQaoaSolver::new(QaoaConfig::fast_test());
        let outcome = solver.solve(&small_problem()).unwrap();
        let first = outcome.cost_history.first().unwrap();
        let last = outcome.cost_history.last().unwrap();
        assert!(last <= first, "optimizer made things worse");
    }

    #[test]
    fn optimum_is_reachable_in_distribution() {
        let p = small_problem();
        let opt = solve_exact(&p).unwrap();
        let solver = PenaltyQaoaSolver::new(QaoaConfig {
            layers: 3,
            max_iters: 120,
            ..QaoaConfig::fast_test()
        });
        let outcome = solver.solve(&p).unwrap();
        // The optimal bitstring should appear with non-trivial probability.
        let p_opt: f64 = opt
            .solutions
            .iter()
            .map(|&s| outcome.counts.probability(s))
            .sum();
        assert!(p_opt > 0.01, "p(optimal) = {p_opt}");
    }

    #[test]
    fn transpiled_stats_present_when_requested() {
        let solver = PenaltyQaoaSolver::new(QaoaConfig {
            transpiled_stats: true,
            ..QaoaConfig::fast_test()
        });
        let outcome = solver.solve(&small_problem()).unwrap();
        assert!(outcome.circuit.transpiled_depth.is_some());
        assert!(outcome.circuit.two_qubit_gates.unwrap() > 0);
    }

    #[test]
    fn rejects_oversized_problems() {
        let p = Problem::builder(30).linear(0, 1.0).build().unwrap();
        let err = PenaltyQaoaSolver::default().solve(&p).unwrap_err();
        assert!(matches!(err, SolverError::TooLarge { .. }));
    }
}
