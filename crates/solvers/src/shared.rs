//! Shared machinery for every variational solver: configuration, the
//! optimize-then-sample loop, and transpiled-circuit statistics.

use choco_model::{CircuitStats, SolverError, TimingBreakdown};
use choco_optim::OptimizerKind;
use choco_qsim::{
    transpile, Circuit, Counts, EngineKind, NoiseModel, PhasePoly, SimConfig, SimWorkspace,
    TranspileOptions, MAX_SPARSE_QUBITS,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Maximum register size any solver will simulate on the **dense**
/// engine (a `2^26` amplitude buffer is 1 GiB).
pub const MAX_SIM_QUBITS: usize = 26;

/// Configuration shared by all QAOA-family solvers.
#[derive(Clone, Debug)]
pub struct QaoaConfig {
    /// Number of repeated layers `L` (the paper uses 7 for the baselines
    /// and 1 for Choco-Q in Table II).
    pub layers: usize,
    /// Measurement shots for the final sample.
    pub shots: u64,
    /// Classical optimizer iteration budget.
    pub max_iters: usize,
    /// Which classical optimizer to run.
    pub optimizer: OptimizerKind,
    /// Penalty weight λ for soft-constraint encodings.
    pub penalty: f64,
    /// Seed for measurement sampling.
    pub seed: u64,
    /// Also transpile the final circuit and record basic-gate statistics
    /// (depth / gate counts). Cheap for these circuit sizes.
    pub transpiled_stats: bool,
    /// When set, the *final* sampling runs the transpiled circuit through
    /// this stochastic noise model (parameters are still optimized
    /// noiselessly — "tune on the simulator, deploy on the device"). Used
    /// by the hardware experiments (Fig. 10/13b/14).
    pub noise: Option<NoiseModel>,
    /// Monte-Carlo error trajectories for noisy sampling.
    pub noise_trajectories: u32,
    /// State-vector engine configuration (worker threads, parallel
    /// threshold) used by the variational loop's [`SimWorkspace`].
    pub sim: SimConfig,
    /// Cooperative wall-clock deadline. Checked at the top of every
    /// objective evaluation (before any circuit is built or executed):
    /// once it passes, the remaining optimizer iterations become cheap
    /// no-ops, final sampling is skipped, and the loop reports
    /// [`LoopResult::deadline_exceeded`] — which the solvers surface as
    /// [`SolverError::Timeout`]. `None` (the default) never expires.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, checked at the same point as
    /// [`QaoaConfig::deadline`]: once another thread sets it, the solve
    /// drains exactly like an expired deadline and surfaces
    /// [`SolverError::Timeout`]. This is how a long-lived scheduler (the
    /// serve daemon's `cancel` op) interrupts an in-flight solve without
    /// killing its thread. `None` (the default) never cancels.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for QaoaConfig {
    fn default() -> Self {
        QaoaConfig {
            layers: 7,
            shots: 10_000,
            max_iters: 100,
            optimizer: OptimizerKind::default(),
            penalty: 10.0,
            seed: 42,
            transpiled_stats: true,
            noise: None,
            noise_trajectories: 30,
            sim: SimConfig::default(),
            deadline: None,
            cancel: None,
        }
    }
}

impl QaoaConfig {
    /// A cheap configuration for unit tests (fewer shots/iterations).
    pub fn fast_test() -> Self {
        QaoaConfig {
            layers: 2,
            shots: 2_000,
            max_iters: 40,
            transpiled_stats: false,
            ..QaoaConfig::default()
        }
    }
}

/// Rejects instances that would not fit the dense simulator.
pub fn check_size(required_qubits: usize) -> Result<(), SolverError> {
    check_size_for(required_qubits, EngineKind::Dense)
}

/// Rejects native-inequality instances for the soft-constraint baselines.
///
/// Their penalty Hamiltonian ([`choco_model::Problem::penalty_poly`])
/// expands *equality* rows only, so a first-class `≤` row would be
/// silently dropped from the objective — the solve would "succeed" while
/// optimizing a different problem. Solvers whose feasibility handling is
/// exact (Choco-Q's driver-level slack registers, Grover's classical
/// oracle) do not call this.
pub fn reject_inequalities(
    problem: &choco_model::Problem,
    solver: &str,
) -> Result<(), SolverError> {
    if problem.has_inequalities() {
        return Err(SolverError::Unsupported(format!(
            "`{}` has native `<=` rows, which {solver}'s soft penalty cannot encode \
             (it expands equality rows only and would silently ignore the budget); \
             use the choco solver, or re-encode the instance with explicit slack \
             variables (e.g. the knapsack `slack` encoding)",
            problem.name()
        )));
    }
    Ok(())
}

/// Engine-aware size gate: the dense engine stops at [`MAX_SIM_QUBITS`];
/// the sparse/compact/auto engines accept anything the circuit IR can
/// express ([`MAX_SPARSE_QUBITS`]) because a feasible-subspace solve
/// never allocates `2^n` of anything (the compact engine's storage is
/// `|F|` amplitudes plus its compiled rank tables).
pub fn check_size_for(required_qubits: usize, engine: EngineKind) -> Result<(), SolverError> {
    let limit = match engine {
        EngineKind::Dense => MAX_SIM_QUBITS,
        EngineKind::Sparse | EngineKind::Compact | EngineKind::Auto => MAX_SPARSE_QUBITS,
    };
    if required_qubits > limit {
        Err(SolverError::TooLarge {
            required: required_qubits,
            limit,
        })
    } else {
        Ok(())
    }
}

/// The diagonal cost a variational loop minimizes: a materialized `2^n`
/// table (bit-identical across engines; the default up to
/// [`MAX_SIM_QUBITS`]) or the bare polynomial (table-free — the only
/// option for registers too wide to tabulate, where the sparse engine
/// evaluates it per occupied entry).
pub enum CostSpec<'a> {
    /// A per-basis-state value table of length `2^n`.
    Table(&'a [f64]),
    /// The cost polynomial itself.
    Poly(&'a PhasePoly),
}

impl CostSpec<'_> {
    /// The cost of one assignment.
    pub fn value(&self, bits: u64) -> f64 {
        match self {
            CostSpec::Table(values) => values[bits as usize],
            CostSpec::Poly(poly) => poly.eval_bits(bits),
        }
    }

    /// Expectation on an engine state.
    pub fn expectation(&self, state: &choco_qsim::SimEngine) -> f64 {
        match self {
            CostSpec::Table(values) => state.expectation_diag_values(values),
            CostSpec::Poly(poly) => state.expectation_diag_poly(poly),
        }
    }

    /// Expectation on one lane of a batched replay — bit-identical to
    /// [`CostSpec::expectation`] on that lane's serial state.
    pub fn expectation_lane(&self, batch: &choco_qsim::BatchWorkspace, lane: usize) -> f64 {
        match self {
            CostSpec::Table(values) => batch.expectation_diag_values(lane, values),
            CostSpec::Poly(poly) => batch.expectation_diag_poly(lane, poly),
        }
    }
}

/// The variational objective handed to the optimizers: maps a parameter
/// vector to `E[cost]` through one circuit execution, and — when the
/// simulator configuration enables batching — evaluates groups of
/// independent candidates through [`SimWorkspace::run_batch`], one plan
/// traversal for up to `batch_size` angle sets.
///
/// Bit-identity: [`choco_qsim::BatchWorkspace`] lanes reproduce the exact
/// IEEE expression sequence of serial replays, so every value this
/// objective returns is identical whether it went through `eval`,
/// a batched chunk, or the sequential fallback — optimizer trajectories
/// cannot depend on `batch_size`.
struct BatchedObjective<'a, F: Fn(&[f64]) -> Circuit> {
    build: &'a F,
    cost: &'a CostSpec<'a>,
    config: &'a QaoaConfig,
    workspace: &'a std::cell::RefCell<&'a mut SimWorkspace>,
    deadline_hit: &'a std::cell::Cell<bool>,
    execute_time: &'a std::cell::Cell<std::time::Duration>,
    /// Reused circuit buffer for batched chunks (no per-chunk Vec).
    circuits: Vec<Circuit>,
}

impl<F: Fn(&[f64]) -> Circuit> BatchedObjective<'_, F> {
    /// The sticky cooperative-deadline check shared by both evaluation
    /// paths: returns `true` once [`QaoaConfig::deadline`] has passed or
    /// [`QaoaConfig::cancel`] has been set.
    fn deadline_expired(&self) -> bool {
        if self.deadline_hit.get() {
            return true;
        }
        let cancelled = self
            .config
            .cancel
            .as_ref()
            .is_some_and(|flag| flag.load(std::sync::atomic::Ordering::SeqCst));
        if cancelled || self.config.deadline.is_some_and(|d| Instant::now() >= d) {
            self.deadline_hit.set(true);
            return true;
        }
        false
    }
}

impl<F: Fn(&[f64]) -> Circuit> choco_optim::Objective for BatchedObjective<'_, F> {
    fn eval(&mut self, params: &[f64]) -> f64 {
        if self.deadline_expired() {
            return f64::INFINITY;
        }
        let circuit = (self.build)(params);
        let t0 = Instant::now();
        let mut ws = self.workspace.borrow_mut();
        let state = ws.run(&circuit);
        let value = self.cost.expectation(state);
        self.execute_time
            .set(self.execute_time.get() + t0.elapsed());
        value
    }

    fn eval_batch(&mut self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        let k = self.config.sim.batch_size;
        if k <= 1 {
            for x in xs {
                out.push(self.eval(x));
            }
            return;
        }
        for chunk in xs.chunks(k) {
            // The sticky deadline check fires inside the batched loop,
            // once per chunk: when it trips, the whole chunk gets the
            // same `+inf` every member would have gotten serially.
            if self.deadline_expired() {
                out.extend(std::iter::repeat_n(f64::INFINITY, chunk.len()));
                continue;
            }
            if chunk.len() == 1 {
                out.push(self.eval(&chunk[0]));
                continue;
            }
            self.circuits.clear();
            self.circuits.extend(chunk.iter().map(|x| (self.build)(x)));
            let t0 = Instant::now();
            let mut ws = self.workspace.borrow_mut();
            if let Some(batch) = ws.run_batch(&self.circuits) {
                for lane in 0..chunk.len() {
                    out.push(self.cost.expectation_lane(batch, lane));
                }
                self.execute_time
                    .set(self.execute_time.get() + t0.elapsed());
            } else {
                // Batching doesn't apply (wrong engine, fallback shape):
                // release the workspace borrow and evaluate sequentially.
                drop(ws);
                self.execute_time
                    .set(self.execute_time.get() + t0.elapsed());
                for x in chunk {
                    out.push(self.eval(x));
                }
            }
        }
    }
}

/// Result of [`variational_loop`].
pub struct LoopResult {
    /// Final measurement histogram (over the full register — callers mask
    /// ancillas out themselves if needed).
    pub counts: Counts,
    /// Best-so-far cost per optimizer iteration.
    pub cost_history: Vec<f64>,
    /// Optimizer iterations executed.
    pub iterations: usize,
    /// The final circuit (at the best parameters).
    pub final_circuit: Circuit,
    /// Timing: `execute` covers state-vector runs, `classical` the
    /// optimizer bookkeeping around them.
    pub timing: TimingBreakdown,
    /// Whether [`QaoaConfig::deadline`] expired mid-loop. When `true` the
    /// final sampling pass was skipped and `counts` is empty — callers
    /// must treat the result as failed ([`SolverError::Timeout`]), never
    /// report its metrics.
    pub deadline_exceeded: bool,
}

/// The optimize-then-sample loop common to all solvers:
/// minimize `E[cost]` over the circuit parameters, then sample the final
/// circuit.
///
/// `build` maps a parameter vector to a circuit over `n_qubits` qubits;
/// `cost` is the diagonal (minimization convention) whose expectation is
/// optimized — a `2^n` table or a bare polynomial (see [`CostSpec`]).
/// Every state execution runs through `workspace` (and therefore through
/// whichever [`choco_qsim::SimEngine`] its configuration selects), so
/// iterations after the first perform **no amplitude-vector allocations**
/// and re-used `PhasePoly` diagonals are expanded once, not once per
/// iteration. Callers own the workspace and may share it across restarts
/// and elimination branches.
pub fn variational_loop<F>(
    n_qubits: usize,
    build: F,
    cost: &CostSpec<'_>,
    x0: &[f64],
    config: &QaoaConfig,
    workspace: &mut SimWorkspace,
) -> LoopResult
where
    F: Fn(&[f64]) -> Circuit,
{
    if let CostSpec::Table(values) = cost {
        assert_eq!(values.len(), 1 << n_qubits, "cost table size mismatch");
    }
    let loop_start = Instant::now();

    // Cooperative deadline: checked before each objective evaluation so a
    // hung cell can never block longer than one circuit execution. Once
    // tripped, the flag is sticky — every remaining iteration returns
    // `+inf` without touching the engine, so the optimizer drains its
    // budget in microseconds instead of being aborted mid-state.
    let deadline_hit = std::cell::Cell::new(false);
    let execute_cell = std::cell::Cell::new(std::time::Duration::ZERO);
    let result = {
        let workspace = std::cell::RefCell::new(&mut *workspace);
        let objective = BatchedObjective {
            build: &build,
            cost,
            config,
            workspace: &workspace,
            deadline_hit: &deadline_hit,
            execute_time: &execute_cell,
            circuits: Vec::new(),
        };
        config
            .optimizer
            .minimize_obj(config.max_iters, objective, x0)
    };
    let mut execute_time = execute_cell.get();

    let final_circuit = build(&result.best_params);
    if deadline_hit.get() {
        let total = loop_start.elapsed();
        return LoopResult {
            counts: Counts::new(),
            cost_history: result.history,
            iterations: result.iterations,
            final_circuit,
            timing: TimingBreakdown {
                compile: std::time::Duration::ZERO,
                execute: execute_time,
                classical: total.saturating_sub(execute_time),
            },
            deadline_exceeded: true,
        };
    }
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let counts = match &config.noise {
        None => {
            workspace.run(&final_circuit);
            workspace.sample(config.shots, &mut rng)
        }
        Some(noise) => sample_transpiled_noisy(
            config.sim,
            &final_circuit,
            noise,
            config.shots,
            config.noise_trajectories,
            &mut rng,
        )
        .unwrap_or_else(|_| {
            workspace.run(&final_circuit);
            workspace.sample(config.shots, &mut rng)
        }),
    };
    execute_time += t0.elapsed();

    let total = loop_start.elapsed();
    LoopResult {
        counts,
        cost_history: result.history,
        iterations: result.iterations,
        final_circuit,
        timing: TimingBreakdown {
            compile: std::time::Duration::ZERO,
            execute: execute_time,
            classical: total.saturating_sub(execute_time),
        },
        deadline_exceeded: false,
    }
}

/// Samples a structured circuit under noise: widens it by the paper's two
/// clean ancillas (needed by multi-controlled lowering), transpiles, runs
/// Monte-Carlo noisy execution, and masks the ancilla bits out of the
/// outcomes.
///
/// # Errors
///
/// Returns [`SolverError::Transpile`] if lowering fails.
pub fn sample_transpiled_noisy<R: rand::Rng>(
    sim: SimConfig,
    circuit: &Circuit,
    noise: &NoiseModel,
    shots: u64,
    trajectories: u32,
    rng: &mut R,
) -> Result<Counts, SolverError> {
    let n = circuit.n_qubits();
    let mut wide = Circuit::new(n + 2);
    for g in circuit.gates() {
        wide.push(g.clone());
    }
    let lowered = transpile(&wide, &TranspileOptions::with_ancillas(vec![n, n + 1]))
        .map_err(|e| SolverError::Transpile(e.to_string()))?;
    let raw = noise.sample_noisy_with(sim, &lowered, shots, trajectories, rng);
    let mask = (1u64 << n) - 1;
    Ok(raw.map_bits(|bits| bits & mask))
}

/// Fills in transpiled statistics for a final circuit when requested.
pub fn circuit_stats(
    circuit: &Circuit,
    ancillas: Vec<usize>,
    want_transpiled: bool,
) -> Result<CircuitStats, SolverError> {
    let mut stats = CircuitStats {
        qubits: circuit.n_qubits(),
        logical_depth: circuit.depth(),
        transpiled_depth: None,
        transpiled_gates: None,
        two_qubit_gates: None,
    };
    if want_transpiled {
        let lowered = transpile(circuit, &TranspileOptions::with_ancillas(ancillas))
            .map_err(|e| SolverError::Transpile(e.to_string()))?;
        stats.transpiled_depth = Some(lowered.depth());
        stats.transpiled_gates = Some(lowered.len());
        stats.two_qubit_gates = Some(lowered.multi_qubit_gate_count());
    }
    Ok(stats)
}

/// A standard linear-ramp initial parameter vector for QAOA:
/// `γ_l` ramps up, `β_l` ramps down — layout `[γ_1, β_1, …, γ_L, β_L]`.
pub fn ramp_initial_params(layers: usize) -> Vec<f64> {
    let mut x0 = Vec::with_capacity(2 * layers);
    for l in 0..layers {
        let t = (l as f64 + 1.0) / layers as f64;
        x0.push(0.4 * t); // γ
        x0.push(0.4 * (1.0 - t) + 0.1); // β
    }
    x0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn check_size_boundaries() {
        assert!(check_size(MAX_SIM_QUBITS).is_ok());
        assert!(matches!(
            check_size(MAX_SIM_QUBITS + 1),
            Err(SolverError::TooLarge { .. })
        ));
    }

    #[test]
    fn sparse_engines_lift_the_size_gate() {
        // The dense cap exists because of the 2^n buffer; the sparse
        // engines go to the circuit IR's limit.
        for engine in [EngineKind::Sparse, EngineKind::Compact, EngineKind::Auto] {
            assert!(check_size_for(MAX_SIM_QUBITS + 2, engine).is_ok());
            assert!(matches!(
                check_size_for(MAX_SPARSE_QUBITS + 1, engine),
                Err(SolverError::TooLarge { .. })
            ));
        }
        assert!(matches!(
            check_size_for(MAX_SIM_QUBITS + 2, EngineKind::Dense),
            Err(SolverError::TooLarge { .. })
        ));
    }

    #[test]
    fn cost_spec_table_and_poly_agree() {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(0, 2.0);
        poly.add_quadratic(1, 2, -1.0);
        let table: Vec<f64> = (0..8u64).map(|b| poly.eval_bits(b)).collect();
        let spec_t = CostSpec::Table(&table);
        let spec_p = CostSpec::Poly(&poly);
        for bits in 0..8u64 {
            assert_eq!(spec_t.value(bits), spec_p.value(bits));
        }
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.7);
        let state = choco_qsim::SimEngine::run_with(&c, SimConfig::serial());
        assert!((spec_t.expectation(&state) - spec_p.expectation(&state)).abs() < 1e-12);
    }

    #[test]
    fn ramp_params_shape() {
        let x0 = ramp_initial_params(3);
        assert_eq!(x0.len(), 6);
        assert!(x0[0] < x0[2] && x0[2] < x0[4], "γ ramps up");
        assert!(x0[1] > x0[3] && x0[3] > x0[5], "β ramps down");
    }

    #[test]
    fn variational_loop_optimizes_a_single_qubit() {
        // cost = P(|1⟩); circuit = Rx(θ). Optimum: θ = 0 (stay at |0⟩)
        // from a poor start.
        let cost = vec![0.0, 1.0];
        let config = QaoaConfig {
            layers: 1,
            shots: 2000,
            max_iters: 60,
            transpiled_stats: false,
            ..QaoaConfig::default()
        };
        let mut workspace = SimWorkspace::new(SimConfig::serial());
        let result = variational_loop(
            1,
            |params| {
                let mut c = Circuit::new(1);
                c.rx(0, params[0]);
                c
            },
            &CostSpec::Table(&cost),
            &[2.0],
            &config,
            &mut workspace,
        );
        assert_eq!(
            workspace.reallocations(),
            1,
            "optimizer iterations must reuse the amplitude buffer"
        );
        assert!(
            *result.cost_history.last().unwrap() < 0.05,
            "history: {:?}",
            result.cost_history
        );
        assert!(result.counts.probability(0) > 0.9);
        assert!(result.iterations > 0);
    }

    /// A 3-qubit loop the compact engine can plan: superpose, phase with
    /// the cost diagonal, mix. Cost favors |000⟩.
    fn run_confined_loop(sim: SimConfig) -> (LoopResult, u64) {
        let mut poly = PhasePoly::new(3);
        poly.add_linear(0, 1.0);
        poly.add_linear(1, 2.0);
        poly.add_quadratic(0, 2, 0.5);
        let table: Vec<f64> = (0..8u64).map(|b| poly.eval_bits(b)).collect();
        let poly = Arc::new(poly);
        let config = QaoaConfig {
            layers: 1,
            shots: 2_000,
            max_iters: 30,
            transpiled_stats: false,
            sim,
            ..QaoaConfig::default()
        };
        let mut workspace = SimWorkspace::new(sim);
        let result = variational_loop(
            3,
            |params| {
                let mut c = Circuit::new(3);
                c.h(0).h(1).h(2);
                c.diag(poly.clone(), params[0]);
                c.rx(0, params[1]).rx(1, params[1]).rx(2, params[1]);
                c
            },
            &CostSpec::Table(&table),
            &[0.3, 0.5],
            &config,
            &mut workspace,
        );
        (result, workspace.plan_compilations())
    }

    #[test]
    fn batched_loop_is_bit_identical_to_serial_and_compiles_once() {
        let compact = SimConfig::serial().with_engine(EngineKind::Compact);
        let (serial, _) = run_confined_loop(compact);
        for k in [2usize, 3, 8] {
            let (batched, compilations) = run_confined_loop(compact.with_batch(k));
            assert_eq!(serial.counts, batched.counts, "batch {k}");
            assert_eq!(serial.cost_history, batched.cost_history, "batch {k}");
            assert_eq!(serial.iterations, batched.iterations, "batch {k}");
            assert_eq!(compilations, 1, "batch {k} must reuse one plan");
        }
        // Non-compact engines take the sequential fallback and still
        // produce the same trajectory.
        let (dense, _) = run_confined_loop(SimConfig::serial().with_batch(8));
        assert_eq!(serial.counts, dense.counts);
        assert_eq!(serial.cost_history, dense.cost_history);
    }

    #[test]
    fn expired_deadline_is_honored_inside_the_batched_loop() {
        let expired = Some(Instant::now() - std::time::Duration::from_secs(1));
        let mut results = Vec::new();
        for k in [1usize, 8] {
            let sim = SimConfig::serial()
                .with_engine(EngineKind::Compact)
                .with_batch(k);
            let config = QaoaConfig {
                layers: 1,
                shots: 2_000,
                max_iters: 25,
                transpiled_stats: false,
                sim,
                deadline: expired,
                ..QaoaConfig::default()
            };
            let mut workspace = SimWorkspace::new(sim);
            let result = variational_loop(
                1,
                |params| {
                    let mut c = Circuit::new(1);
                    c.rx(0, params[0]);
                    c
                },
                &CostSpec::Table(&[0.0, 1.0]),
                &[2.0],
                &config,
                &mut workspace,
            );
            assert!(result.deadline_exceeded, "batch {k}");
            assert_eq!(result.counts, Counts::new(), "batch {k}: sampling skipped");
            assert!(
                result.cost_history.iter().all(|v| v.is_infinite()),
                "batch {k}: every evaluation must short-circuit to +inf"
            );
            results.push(result);
        }
        // The sticky check fires inside the batched chunk loop, so the
        // drained trajectories are identical at every batch size.
        assert_eq!(results[0].cost_history, results[1].cost_history);
        assert_eq!(results[0].iterations, results[1].iterations);
    }

    #[test]
    fn circuit_stats_with_and_without_transpile() {
        let mut poly = choco_qsim::PhasePoly::new(2);
        poly.add_quadratic(0, 1, 1.0);
        let mut c = Circuit::new(2);
        c.h(0).h(1).diag(Arc::new(poly), 0.3);
        let basic = circuit_stats(&c, vec![], false).unwrap();
        assert_eq!(basic.qubits, 2);
        assert!(basic.transpiled_depth.is_none());
        let full = circuit_stats(&c, vec![], true).unwrap();
        assert!(full.transpiled_depth.unwrap() >= full.logical_depth);
        assert!(full.two_qubit_gates.unwrap() > 0);
    }
}
