//! # choco-optim
//!
//! Derivative-free classical optimizers for the variational loop.
//!
//! The paper uses COBYLA ("constrained optimization by linear
//! approximation" \[39\]) for all designs; [`Cobyla`] implements it (in
//! the unconstrained, bound-free form the `{γ_l, β_l}` loop needs) and is
//! the default. A Nelder–Mead simplex ([`NelderMead`]) and SPSA
//! ([`Spsa`]) remain selectable — QAOA outcome quality is known to be
//! sensitive to the classical-optimizer choice, so the runner exposes the
//! selection as a spec key / CLI flag.
//!
//! Every optimizer records a per-iteration best-so-far history so the
//! convergence experiment can be regenerated, with the invariant that
//! `history.last() == Some(&best_value)` — the final history point is the
//! value the run actually achieved.
//!
//! ```
//! use choco_optim::Cobyla;
//!
//! // minimize the sphere function
//! let result = Cobyla::default().minimize(
//!     |x| x.iter().map(|v| v * v).sum(),
//!     &[1.0, -2.0],
//! );
//! assert!(result.best_value < 1e-6);
//! ```

#![warn(missing_docs)]

use std::fmt;

/// An objective function, with an optional batched evaluation path.
///
/// The optimizers call [`Objective::eval_batch`] wherever they hold a
/// group of *independent* candidate points — COBYLA's initial simplex and
/// degenerate-geometry rebuilds, Nelder–Mead's initial simplex and shrink
/// steps — and [`Objective::eval`] for the sequentially dependent probes
/// (reflection → expansion/contraction chains, trust-region candidate →
/// extended step). The default `eval_batch` evaluates sequentially, so a
/// plain closure behaves exactly as before; an objective backed by a
/// batched simulator (the variational loop's
/// `SimWorkspace::run_batch` path) overrides it to evaluate the group in
/// one pass.
///
/// Contract: `eval_batch` must return one value per point, and each value
/// must equal what `eval` would have returned for that point alone — the
/// optimizers' accounting (evaluation counts, best tracking, history)
/// folds batched results in index order, so a conforming objective makes
/// batched and serial runs produce identical [`OptimizeResult`]s.
pub trait Objective {
    /// Evaluates the objective at one point.
    fn eval(&mut self, x: &[f64]) -> f64;

    /// Evaluates a group of independent points, filling `out` with one
    /// value per point (in order). The default is a sequential loop over
    /// [`Objective::eval`].
    fn eval_batch(&mut self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        out.clear();
        for x in xs {
            out.push(self.eval(x));
        }
    }
}

/// Every plain closure is an objective with the sequential batch path.
impl<F: FnMut(&[f64]) -> f64> Objective for F {
    fn eval(&mut self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// Outcome of an optimization run.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizeResult {
    /// Best parameter vector found.
    pub best_params: Vec<f64>,
    /// Objective at `best_params`.
    pub best_value: f64,
    /// Best-so-far objective after each iteration (for convergence plots).
    pub history: Vec<f64>,
    /// Total objective evaluations.
    pub evaluations: usize,
    /// Iterations executed.
    pub iterations: usize,
}

/// Which optimizer a solver should run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptimizerKind {
    /// COBYLA — linear-approximation trust region (the paper's
    /// optimizer \[39\]; the default).
    #[default]
    Cobyla,
    /// Nelder–Mead simplex.
    NelderMead,
    /// Simultaneous perturbation stochastic approximation.
    Spsa,
}

impl OptimizerKind {
    /// Every selectable optimizer, default first.
    pub const ALL: [OptimizerKind; 3] = [
        OptimizerKind::Cobyla,
        OptimizerKind::NelderMead,
        OptimizerKind::Spsa,
    ];

    /// Short stable label (`"cobyla"`, `"nelder-mead"`, `"spsa"`) — the
    /// spelling [`OptimizerKind::parse`] round-trips.
    pub fn label(&self) -> &'static str {
        match self {
            OptimizerKind::Cobyla => "cobyla",
            OptimizerKind::NelderMead => "nelder-mead",
            OptimizerKind::Spsa => "spsa",
        }
    }

    /// Parses an optimizer name, case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid choices.
    pub fn parse(text: &str) -> Result<OptimizerKind, String> {
        match text.to_ascii_lowercase().as_str() {
            "cobyla" => Ok(OptimizerKind::Cobyla),
            "nelder-mead" | "neldermead" | "nelder_mead" => Ok(OptimizerKind::NelderMead),
            "spsa" => Ok(OptimizerKind::Spsa),
            other => Err(format!(
                "unknown optimizer `{other}` (expected cobyla|nelder-mead|spsa)"
            )),
        }
    }

    /// Runs the chosen optimizer with `max_iters` iterations from `x0`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        max_iters: usize,
        f: F,
        x0: &[f64],
    ) -> OptimizeResult {
        self.minimize_obj(max_iters, f, x0)
    }

    /// Like [`OptimizerKind::minimize`], but for any [`Objective`] —
    /// the entry point for callers with a batched evaluation path.
    pub fn minimize_obj<O: Objective>(&self, max_iters: usize, f: O, x0: &[f64]) -> OptimizeResult {
        match self {
            OptimizerKind::Cobyla => Cobyla {
                max_iters,
                ..Cobyla::default()
            }
            .minimize_obj(f, x0),
            OptimizerKind::NelderMead => NelderMead {
                max_iters,
                ..NelderMead::default()
            }
            .minimize_obj(f, x0),
            OptimizerKind::Spsa => Spsa {
                max_iters,
                ..Spsa::default()
            }
            .minimize_obj(f, x0),
        }
    }
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The Nelder–Mead downhill simplex method.
///
/// Standard coefficients (reflect 1, expand 2, contract ½, shrink ½) with a
/// size-based initial simplex and dual f/x tolerance termination.
#[derive(Clone, Debug)]
pub struct NelderMead {
    /// Maximum iterations (one reflection cycle each).
    pub max_iters: usize,
    /// Terminate when the simplex objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex diameter falls below this.
    pub x_tol: f64,
    /// Step used to seed the initial simplex around `x0`.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_iters: 200,
            f_tol: 1e-8,
            x_tol: 1e-8,
            initial_step: 0.4,
        }
    }
}

impl NelderMead {
    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or the objective returns NaN.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, f: F, x0: &[f64]) -> OptimizeResult {
        self.minimize_obj(f, x0)
    }

    /// Like [`NelderMead::minimize`], but for any [`Objective`]. The
    /// initial simplex and every shrink step — the groups of independent
    /// evaluations — go through [`Objective::eval_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or the objective returns NaN.
    pub fn minimize_obj<O: Objective>(&self, mut f: O, x0: &[f64]) -> OptimizeResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let n = x0.len();
        let mut evaluations = 0usize;
        let eval = |f: &mut O, x: &[f64], evals: &mut usize| {
            *evals += 1;
            f.eval(x)
        };
        let eval_batch = |f: &mut O, xs: &[Vec<f64>], out: &mut Vec<f64>, evals: &mut usize| {
            f.eval_batch(xs, out);
            assert_eq!(out.len(), xs.len(), "objective returned a short batch");
            *evals += out.len();
        };

        // Initial simplex: x0 and x0 + step·e_i — n+1 independent
        // evaluations, batched.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += self.initial_step;
            simplex.push(v);
        }
        let mut values: Vec<f64> = Vec::with_capacity(n + 1);
        eval_batch(&mut f, &simplex, &mut values, &mut evaluations);

        let mut history = Vec::with_capacity(self.max_iters);
        let mut iterations = 0usize;

        for _ in 0..self.max_iters {
            iterations += 1;
            // Order the simplex.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN objective"));
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            // Termination.
            let spread = values[worst] - values[best];
            let diameter = simplex
                .iter()
                .map(|x| {
                    x.iter()
                        .zip(simplex[best].iter())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max)
                })
                .fold(0.0, f64::max);
            if spread.abs() < self.f_tol && diameter < self.x_tol {
                history.push(values[best]);
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (idx, x) in simplex.iter().enumerate() {
                if idx == worst {
                    continue;
                }
                for (c, v) in centroid.iter_mut().zip(x.iter()) {
                    *c += v / n as f64;
                }
            }
            let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
                a.iter()
                    .zip(b.iter())
                    .map(|(x, y)| x + t * (y - x))
                    .collect()
            };

            // Reflection → expansion/contraction: each probe depends on
            // the previous one's value, so these stay sequential.
            let reflected = blend(&centroid, &simplex[worst], -1.0);
            let fr = eval(&mut f, &reflected, &mut evaluations);
            if fr < values[best] {
                // Expansion.
                let expanded = blend(&centroid, &simplex[worst], -2.0);
                let fe = eval(&mut f, &expanded, &mut evaluations);
                if fe < fr {
                    simplex[worst] = expanded;
                    values[worst] = fe;
                } else {
                    simplex[worst] = reflected;
                    values[worst] = fr;
                }
            } else if fr < values[second_worst] {
                simplex[worst] = reflected;
                values[worst] = fr;
            } else {
                // Contraction (outside if the reflection helped, else inside).
                let t = if fr < values[worst] { -0.5 } else { 0.5 };
                let contracted = blend(&centroid, &simplex[worst], t);
                let fc = eval(&mut f, &contracted, &mut evaluations);
                if fc < values[worst].min(fr) {
                    simplex[worst] = contracted;
                    values[worst] = fc;
                } else {
                    // Shrink toward the best vertex: the n new vertices
                    // depend only on the pre-shrink simplex — independent,
                    // so batched.
                    let best_point = simplex[best].clone();
                    let shrink_idx: Vec<usize> = (0..=n).filter(|&i| i != best).collect();
                    let shrunk: Vec<Vec<f64>> = shrink_idx
                        .iter()
                        .map(|&i| blend(&best_point, &simplex[i], 0.5))
                        .collect();
                    let mut shrunk_values = Vec::with_capacity(n);
                    eval_batch(&mut f, &shrunk, &mut shrunk_values, &mut evaluations);
                    for ((&idx, x), v) in shrink_idx.iter().zip(shrunk).zip(shrunk_values) {
                        simplex[idx] = x;
                        values[idx] = v;
                    }
                }
            }

            // Best-so-far *after* this cycle's updates: an improvement
            // found in the final iteration must land in the history, so
            // `history.last()` always reports the achieved value.
            let cycle_best = values.iter().copied().fold(f64::INFINITY, f64::min);
            history.push(cycle_best);
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN objective"))
            .expect("non-empty simplex");
        OptimizeResult {
            best_params: simplex[best_idx].clone(),
            best_value,
            history,
            evaluations,
            iterations,
        }
    }
}

/// Running evaluation accounting shared by the COBYLA loop: every
/// objective call updates the global best, so the returned
/// `best_params`/`best_value` cover *all* evaluated points (model steps,
/// geometry repairs, resets), not only simplex vertices.
struct EvalState {
    evaluations: usize,
    best_params: Vec<f64>,
    best_value: f64,
}

impl EvalState {
    fn record(&mut self, x: &[f64], v: f64) {
        self.evaluations += 1;
        assert!(!v.is_nan(), "NaN objective");
        if v < self.best_value {
            self.best_value = v;
            self.best_params.clear();
            self.best_params.extend_from_slice(x);
        }
    }

    fn eval<O: Objective>(&mut self, f: &mut O, x: &[f64]) -> f64 {
        let v = f.eval(x);
        self.record(x, v);
        v
    }

    /// Evaluates a group of independent points through the objective's
    /// batched path, then folds every value through the same accounting
    /// [`EvalState::eval`] applies — in index order, so the evaluation
    /// count and best tracking match a sequential run exactly.
    fn eval_batch<O: Objective>(&mut self, f: &mut O, xs: &[Vec<f64>], out: &mut Vec<f64>) {
        f.eval_batch(xs, out);
        assert_eq!(out.len(), xs.len(), "objective returned a short batch");
        for (x, &v) in xs.iter().zip(out.iter()) {
            self.record(x, v);
        }
    }
}

/// Solves `a · x = b` by Gaussian elimination with partial pivoting after
/// normalizing each row by its ∞-norm (the rows are simplex edges of
/// magnitude ~ρ, which shrinks over a run — without the scaling a late
/// system would look singular purely by magnitude). Returns `None` for a
/// degenerate (rank-deficient) system.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for (row, rhs) in a.iter_mut().zip(b.iter_mut()) {
        let scale = row.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if scale == 0.0 {
            return None;
        }
        for v in row.iter_mut() {
            *v /= scale;
        }
        *rhs /= scale;
    }
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-10 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let t = a[row][col] / a[col][col];
            if t != 0.0 {
                let (top, bottom) = a.split_at_mut(row);
                let pivot_row = &top[col];
                for (v, p) in bottom[0][col..].iter_mut().zip(&pivot_row[col..]) {
                    *v -= t * p;
                }
                b[row] -= t * b[col];
            }
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

/// COBYLA — "constrained optimization by linear approximation" (Powell
/// 1994), the paper's classical optimizer \[39\], in the unconstrained
/// form the variational loop needs (the `{γ_l, β_l}` box has no
/// constraints; Choco-Q's feasibility is enforced by the circuit, not the
/// optimizer).
///
/// The method maintains an `n+1`-point interpolation simplex. Each
/// iteration:
///
/// 1. **geometry** — a vertex further than `2ρ` (∞-norm) from the best
///    point is pulled back to distance `ρ` along its own direction and
///    re-evaluated, keeping the linear model local as the trust region
///    shrinks; a rank-deficient simplex is rebuilt on fresh axes,
/// 2. **model** — the unique linear interpolant through the simplex
///    yields a gradient estimate `g` (one `n×n` solve),
/// 3. **trust-region step** — the objective is evaluated at
///    `x_best − ρ·g/‖g‖`; a point better than the worst vertex replaces
///    it, and a step that fails to beat the best vertex by a fraction of
///    the predicted decrease halves `ρ` (from `rho_beg` down to
///    `rho_end`, which terminates the run).
///
/// Deterministic (no random draws), one to two objective evaluations
/// per iteration in the steady state (the trust-region point, plus an
/// expansion trial whenever it improves on the best vertex; a geometry
/// rebuild after a degenerate simplex costs `n`) — the same
/// per-iteration budget shape as [`NelderMead`], which matters when
/// every evaluation is a full quantum execution.
#[derive(Clone, Debug)]
pub struct Cobyla {
    /// Maximum iterations (≈ objective evaluations after the initial
    /// simplex).
    pub max_iters: usize,
    /// Initial trust-region radius (also the initial simplex edge).
    pub rho_beg: f64,
    /// Final trust-region radius: the run stops once ρ falls below this.
    pub rho_end: f64,
}

impl Default for Cobyla {
    fn default() -> Self {
        Cobyla {
            max_iters: 200,
            rho_beg: 0.4,
            rho_end: 1e-7,
        }
    }
}

impl Cobyla {
    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or the objective returns NaN.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, f: F, x0: &[f64]) -> OptimizeResult {
        self.minimize_obj(f, x0)
    }

    /// Like [`Cobyla::minimize`], but for any [`Objective`]. The initial
    /// simplex and every degenerate-geometry rebuild — the groups of
    /// independent evaluations — go through [`Objective::eval_batch`];
    /// the trust-region candidate/extended probes stay sequential.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or the objective returns NaN.
    pub fn minimize_obj<O: Objective>(&self, mut f: O, x0: &[f64]) -> OptimizeResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let n = x0.len();
        let mut state = EvalState {
            evaluations: 0,
            best_params: x0.to_vec(),
            best_value: f64::INFINITY,
        };

        // Initial simplex: x0 and x0 + ρ·e_i — n+1 independent
        // evaluations, batched.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += self.rho_beg;
            simplex.push(v);
        }
        let mut values: Vec<f64> = Vec::with_capacity(n + 1);
        state.eval_batch(&mut f, &simplex, &mut values);

        let mut rho = self.rho_beg;
        let mut history = Vec::with_capacity(self.max_iters);
        let mut iterations = 0usize;

        for _ in 0..self.max_iters {
            iterations += 1;
            let best = (0..=n)
                .min_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("NaN objective"))
                .expect("non-empty simplex");
            let worst = (0..=n)
                .max_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("NaN objective"))
                .expect("non-empty simplex");

            // Geometry: pull the farthest vertex inside the 2ρ ball.
            let dist = |x: &[f64]| -> f64 {
                x.iter()
                    .zip(simplex[best].iter())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            };
            let (far, far_dist) = (0..=n)
                .map(|i| (i, dist(&simplex[i])))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("non-empty simplex");
            if far_dist > 2.0 * rho {
                let pulled: Vec<f64> = simplex[far]
                    .iter()
                    .zip(simplex[best].iter())
                    .map(|(x, c)| c + (x - c) * rho / far_dist)
                    .collect();
                values[far] = state.eval(&mut f, &pulled);
                simplex[far] = pulled;
                history.push(state.best_value);
                continue;
            }

            // Linear model: gradient of the interpolant through the
            // simplex (rows are edges from the best vertex).
            let rows: Vec<Vec<f64>> = (0..=n)
                .filter(|&i| i != best)
                .map(|i| {
                    simplex[i]
                        .iter()
                        .zip(simplex[best].iter())
                        .map(|(a, b)| a - b)
                        .collect()
                })
                .collect();
            let rhs: Vec<f64> = (0..=n)
                .filter(|&i| i != best)
                .map(|i| values[i] - values[best])
                .collect();
            let Some(gradient) = solve_linear(rows, rhs) else {
                // Degenerate simplex: rebuild on fresh axes around the
                // best point at the current radius — n independent
                // evaluations, batched.
                let center = simplex[best].clone();
                let center_value = values[best];
                let fresh: Vec<Vec<f64>> = (0..n)
                    .map(|i| {
                        let mut v = center.clone();
                        v[i] += rho;
                        v
                    })
                    .collect();
                let mut fresh_values = Vec::with_capacity(n);
                state.eval_batch(&mut f, &fresh, &mut fresh_values);
                simplex.clear();
                values.clear();
                simplex.push(center);
                values.push(center_value);
                simplex.extend(fresh);
                values.extend(fresh_values);
                history.push(state.best_value);
                continue;
            };
            let norm = gradient.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm > 0.0 {
                // Steepest-descent trust-region step of length ρ.
                let candidate: Vec<f64> = simplex[best]
                    .iter()
                    .zip(gradient.iter())
                    .map(|(x, g)| x - rho * g / norm)
                    .collect();
                let fc = state.eval(&mut f, &candidate);
                let improved = fc < values[best];
                if fc < values[worst] {
                    simplex[worst] = candidate.clone();
                    values[worst] = fc;
                }
                if improved {
                    // The model direction is paying off: try a doubled
                    // step before settling (the simplex-expansion idea —
                    // without it, a long curved valley is traversed in
                    // ρ-sized increments).
                    let extended: Vec<f64> = candidate
                        .iter()
                        .zip(gradient.iter())
                        .map(|(x, g)| x - rho * g / norm)
                        .collect();
                    let fe = state.eval(&mut f, &extended);
                    let worst = (0..=n)
                        .max_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("NaN objective"))
                        .expect("non-empty simplex");
                    if fe < values[worst] {
                        simplex[worst] = extended;
                        values[worst] = fe;
                    }
                } else {
                    // No decrease at this radius: contract.
                    rho *= 0.5;
                }
            } else {
                // Flat interpolant: the model carries no direction at
                // this scale — contract and look closer.
                rho *= 0.5;
            }

            history.push(state.best_value);
            if rho < self.rho_end {
                break;
            }
        }

        let EvalState {
            evaluations,
            best_params,
            best_value,
        } = state;
        OptimizeResult {
            best_params,
            best_value,
            history,
            evaluations,
            iterations,
        }
    }
}

/// Simultaneous perturbation stochastic approximation (SPSA): two gradient
/// evaluations per iteration regardless of dimension — attractive when each
/// evaluation is a full quantum execution.
#[derive(Clone, Debug)]
pub struct Spsa {
    /// Iterations.
    pub max_iters: usize,
    /// Step-size numerator `a` in `a_k = a / (k + 1 + A)^α`.
    pub a: f64,
    /// Perturbation size numerator `c` in `c_k = c / (k + 1)^γ`.
    pub c: f64,
    /// Step-size decay exponent α.
    pub alpha: f64,
    /// Perturbation decay exponent γ.
    pub gamma: f64,
    /// Stability constant `A`.
    pub stability: f64,
    /// PRNG seed for the ±1 perturbation draws.
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            max_iters: 200,
            a: 0.3,
            c: 0.15,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
            seed: 0x5EED,
        }
    }
}

impl Spsa {
    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, f: F, x0: &[f64]) -> OptimizeResult {
        self.minimize_obj(f, x0)
    }

    /// Like [`Spsa::minimize`], but for any [`Objective`]. Each
    /// iteration's ± perturbation pair is a group of two independent
    /// evaluations, so it goes through [`Objective::eval_batch`]; the
    /// post-step probe depends on the pair and stays sequential.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize_obj<O: Objective>(&self, mut f: O, x0: &[f64]) -> OptimizeResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let n = x0.len();
        let mut rng = choco_mathkit::SplitMix64::new(self.seed);
        let mut x = x0.to_vec();
        let mut best_params = x.clone();
        let mut best_value = f.eval(&x);
        let mut evaluations = 1usize;
        let mut history = Vec::with_capacity(self.max_iters);
        let mut pair_values = Vec::with_capacity(2);

        for k in 0..self.max_iters {
            let ak = self.a / (k as f64 + 1.0 + self.stability).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                .collect();
            let plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            let pair = [plus, minus];
            f.eval_batch(&pair, &mut pair_values);
            assert_eq!(pair_values.len(), 2, "objective returned a short batch");
            let (fp, fm) = (pair_values[0], pair_values[1]);
            evaluations += 2;
            for (xi, d) in x.iter_mut().zip(&delta) {
                *xi -= ak * (fp - fm) / (2.0 * ck * d);
            }
            let fx = f.eval(&x);
            evaluations += 1;
            if fx < best_value {
                best_value = fx;
                best_params = x.clone();
            }
            history.push(best_value);
        }

        OptimizeResult {
            best_params,
            best_value,
            history,
            evaluations,
            iterations: self.max_iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }

    #[test]
    fn nelder_mead_minimizes_sphere() {
        let r = NelderMead::default().minimize(sphere, &[2.0, -1.5, 0.7]);
        assert!(r.best_value < 1e-6, "value = {}", r.best_value);
        for p in &r.best_params {
            assert!(p.abs() < 1e-2);
        }
    }

    #[test]
    fn nelder_mead_handles_rosenbrock() {
        let nm = NelderMead {
            max_iters: 2000,
            ..NelderMead::default()
        };
        let r = nm.minimize(rosenbrock, &[-1.0, 1.0]);
        assert!(r.best_value < 1e-4, "value = {}", r.best_value);
        assert!((r.best_params[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn nelder_mead_history_is_monotone_nonincreasing() {
        let r = NelderMead::default().minimize(sphere, &[3.0, 3.0]);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert_eq!(r.history.len(), r.iterations);
    }

    #[test]
    fn nelder_mead_history_ends_at_the_best_value() {
        // Regression: the best-so-far used to be recorded at the *top* of
        // each cycle, so an improvement found in the final iteration
        // never landed in the history and convergence plots under-reported
        // the final point. Early iterations of the sphere improve every
        // cycle, so any small budget exposes the off-by-one.
        for max_iters in [1usize, 2, 3, 7, 50] {
            let nm = NelderMead {
                max_iters,
                ..NelderMead::default()
            };
            let r = nm.minimize(sphere, &[2.0, -1.5, 0.7]);
            assert_eq!(
                r.history.last(),
                Some(&r.best_value),
                "max_iters={max_iters}: history {:?} vs best {}",
                r.history,
                r.best_value
            );
        }
    }

    #[test]
    fn cobyla_minimizes_sphere() {
        let r = Cobyla::default().minimize(sphere, &[2.0, -1.5, 0.7]);
        assert!(r.best_value < 1e-6, "value = {}", r.best_value);
        for p in &r.best_params {
            assert!(p.abs() < 1e-2);
        }
    }

    #[test]
    fn cobyla_handles_rosenbrock() {
        // A linear-model trust region zig-zags through the curved valley
        // (COBYLA's known weakness), but it must still converge to the
        // optimum given budget.
        let c = Cobyla {
            max_iters: 5000,
            ..Cobyla::default()
        };
        let r = c.minimize(rosenbrock, &[-1.0, 1.0]);
        assert!(r.best_value < 1e-2, "value = {}", r.best_value);
        assert!((r.best_params[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn cobyla_is_deterministic() {
        // No random draws anywhere in the method.
        let a = Cobyla::default().minimize(sphere, &[1.0, 2.0]);
        let b = Cobyla::default().minimize(sphere, &[1.0, 2.0]);
        assert_eq!(a.best_params, b.best_params);
        assert_eq!(a.history, b.history);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn cobyla_history_is_best_so_far_and_ends_at_best() {
        for max_iters in [1usize, 2, 5, 40] {
            let c = Cobyla {
                max_iters,
                ..Cobyla::default()
            };
            let r = c.minimize(sphere, &[3.0, -2.0]);
            for w in r.history.windows(2) {
                assert!(w[1] <= w[0] + 1e-12);
            }
            assert_eq!(r.history.len(), r.iterations);
            assert_eq!(r.history.last(), Some(&r.best_value));
        }
    }

    #[test]
    fn cobyla_respects_max_iters_and_counts_evaluations() {
        let mut calls = 0usize;
        let r = Cobyla {
            max_iters: 10,
            ..Cobyla::default()
        }
        .minimize(
            |x| {
                calls += 1;
                sphere(x)
            },
            &[1.0, 1.0],
        );
        assert!(r.iterations <= 10);
        assert_eq!(calls, r.evaluations);
    }

    #[test]
    fn cobyla_terminates_when_rho_collapses() {
        let c = Cobyla {
            max_iters: 100_000,
            rho_beg: 0.1,
            rho_end: 1e-3,
        };
        let r = c.minimize(sphere, &[0.2, 0.2]);
        assert!(r.iterations < 1000, "ρ floor must stop the run early");
    }

    #[test]
    fn cobyla_single_parameter() {
        let r = Cobyla::default().minimize(|x| (x[0] - 1.5).powi(2), &[0.0]);
        assert!((r.best_params[0] - 1.5).abs() < 1e-3);
    }

    #[test]
    fn solve_linear_recovers_gradients_and_rejects_singular() {
        // f(x) = 3x₀ − 2x₁ interpolated exactly.
        let rows = vec![vec![0.5, 0.0], vec![0.0, 0.5]];
        let rhs = vec![1.5, -1.0];
        let g = solve_linear(rows, rhs).expect("full rank");
        assert!((g[0] - 3.0).abs() < 1e-12 && (g[1] + 2.0).abs() < 1e-12);
        // Tiny edges must still solve (row scaling).
        let g = solve_linear(vec![vec![1e-8, 0.0], vec![0.0, 1e-8]], vec![3e-8, -2e-8])
            .expect("scaled full rank");
        assert!((g[0] - 3.0).abs() < 1e-6 && (g[1] + 2.0).abs() < 1e-6);
        // Rank-deficient: two parallel edges.
        assert!(solve_linear(vec![vec![1.0, 1.0], vec![2.0, 2.0]], vec![1.0, 2.0]).is_none());
        assert!(solve_linear(vec![vec![0.0, 0.0], vec![1.0, 0.0]], vec![0.0, 1.0]).is_none());
    }

    #[test]
    fn nelder_mead_respects_max_iters() {
        let nm = NelderMead {
            max_iters: 5,
            ..NelderMead::default()
        };
        let r = nm.minimize(sphere, &[1.0, 1.0]);
        assert!(r.iterations <= 5);
    }

    #[test]
    fn nelder_mead_terminates_early_at_optimum() {
        let nm = NelderMead {
            max_iters: 10_000,
            initial_step: 1e-9,
            ..NelderMead::default()
        };
        let r = nm.minimize(sphere, &[0.0, 0.0]);
        assert!(
            r.iterations < 100,
            "should stop early, took {}",
            r.iterations
        );
    }

    #[test]
    fn spsa_minimizes_sphere() {
        let spsa = Spsa {
            max_iters: 400,
            ..Spsa::default()
        };
        let r = spsa.minimize(sphere, &[1.0, -1.0]);
        assert!(r.best_value < 0.05, "value = {}", r.best_value);
    }

    #[test]
    fn spsa_is_deterministic_for_fixed_seed() {
        let spsa = Spsa::default();
        let a = spsa.minimize(sphere, &[1.0, 2.0]);
        let b = spsa.minimize(sphere, &[1.0, 2.0]);
        assert_eq!(a.best_params, b.best_params);
    }

    #[test]
    fn spsa_history_is_best_so_far() {
        let r = Spsa::default().minimize(sphere, &[2.0]);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn kind_dispatch_runs_all() {
        for kind in OptimizerKind::ALL {
            let r = kind.minimize(100, sphere, &[1.0, 1.0]);
            assert!(r.best_value < sphere(&[1.0, 1.0]), "{kind}");
            assert!(r.evaluations > 0, "{kind}");
        }
        assert_eq!(OptimizerKind::default(), OptimizerKind::Cobyla);
    }

    #[test]
    fn kind_display_parse_round_trips() {
        for kind in OptimizerKind::ALL {
            assert_eq!(OptimizerKind::parse(&format!("{kind}")), Ok(kind));
            // Case-insensitive, matching the engine key's behavior.
            assert_eq!(
                OptimizerKind::parse(&format!("{kind}").to_uppercase()),
                Ok(kind)
            );
        }
        assert_eq!(
            OptimizerKind::parse("Nelder_Mead"),
            Ok(OptimizerKind::NelderMead)
        );
        let err = OptimizerKind::parse("adam").unwrap_err();
        assert!(err.contains("unknown optimizer `adam`"), "{err}");
        assert!(err.contains("cobyla|nelder-mead|spsa"), "{err}");
    }

    /// An [`Objective`] that records every batch-group size it receives
    /// while evaluating through a plain function — lets the tests prove
    /// (a) the optimizers actually route independent groups through
    /// `eval_batch`, and (b) results are identical to the closure path.
    /// The counters live behind `Rc` so a clone can be handed to
    /// `minimize_obj` by value and inspected afterwards.
    #[derive(Clone)]
    struct GroupRecorder {
        f: fn(&[f64]) -> f64,
        groups: std::rc::Rc<std::cell::RefCell<Vec<usize>>>,
        singles: std::rc::Rc<std::cell::Cell<usize>>,
    }

    impl GroupRecorder {
        fn new(f: fn(&[f64]) -> f64) -> Self {
            GroupRecorder {
                f,
                groups: Default::default(),
                singles: Default::default(),
            }
        }

        fn groups(&self) -> Vec<usize> {
            self.groups.borrow().clone()
        }
    }

    impl Objective for GroupRecorder {
        fn eval(&mut self, x: &[f64]) -> f64 {
            self.singles.set(self.singles.get() + 1);
            (self.f)(x)
        }

        fn eval_batch(&mut self, xs: &[Vec<f64>], out: &mut Vec<f64>) {
            self.groups.borrow_mut().push(xs.len());
            out.clear();
            for x in xs {
                out.push((self.f)(x));
            }
        }
    }

    /// Sum of √|xᵢ|: the cusp at the origin defeats reflections and
    /// contractions, forcing Nelder–Mead into shrink steps.
    fn spiky(x: &[f64]) -> f64 {
        x.iter().map(|v| v.abs().sqrt()).sum()
    }

    #[test]
    fn nelder_mead_batches_simplex_and_shrinks_identically() {
        let nm = NelderMead {
            max_iters: 60,
            ..NelderMead::default()
        };
        let serial = nm.minimize(spiky, &[-1.0, 1.0]);
        let recorder = GroupRecorder::new(spiky);
        let batched = nm.minimize_obj(recorder.clone(), &[-1.0, 1.0]);
        assert_eq!(serial, batched);
        // Initial simplex (n+1 = 3) is always the first group; the cusp
        // objective also forces shrink steps (groups of n = 2).
        let groups = recorder.groups();
        assert_eq!(groups.first(), Some(&3));
        assert!(
            groups.iter().skip(1).all(|&g| g == 2),
            "shrink groups should have n points: {groups:?}"
        );
        assert!(groups.len() > 1, "expected shrink batches");
        let group_total: usize = groups.iter().sum();
        assert_eq!(group_total + recorder.singles.get(), batched.evaluations);
    }

    #[test]
    fn cobyla_batches_simplex_and_rebuilds_identically() {
        let c = Cobyla {
            max_iters: 120,
            ..Cobyla::default()
        };
        let serial = c.minimize(rosenbrock, &[-1.0, 1.0]);
        let recorder = GroupRecorder::new(rosenbrock);
        let batched = c.minimize_obj(recorder.clone(), &[-1.0, 1.0]);
        assert_eq!(serial, batched);
        let groups = recorder.groups();
        assert_eq!(groups.first(), Some(&3), "initial simplex batch");
        // Any further group is a degenerate-geometry rebuild of n points.
        assert!(
            groups.iter().skip(1).all(|&g| g == 2),
            "rebuild groups should have n points: {groups:?}"
        );
        let group_total: usize = groups.iter().sum();
        assert_eq!(group_total + recorder.singles.get(), batched.evaluations);
    }

    #[test]
    fn spsa_batches_perturbation_pairs_identically() {
        let spsa = Spsa {
            max_iters: 50,
            ..Spsa::default()
        };
        let serial = spsa.minimize(sphere, &[1.0, -1.0]);
        let recorder = GroupRecorder::new(sphere);
        let batched = spsa.minimize_obj(recorder.clone(), &[1.0, -1.0]);
        assert_eq!(serial, batched);
        let groups = recorder.groups();
        assert_eq!(groups.len(), 50, "one ± pair per iteration");
        assert!(groups.iter().all(|&g| g == 2));
        // x0 probe + per-iteration post-step probe stay sequential.
        assert_eq!(recorder.singles.get(), 51);
    }

    #[test]
    fn kind_minimize_obj_matches_closure_path() {
        for kind in OptimizerKind::ALL {
            let serial = kind.minimize(80, sphere, &[2.0, -1.0, 0.5]);
            let recorder = GroupRecorder::new(sphere);
            let batched = kind.minimize_obj(80, recorder.clone(), &[2.0, -1.0, 0.5]);
            assert_eq!(serial, batched, "{kind}");
            assert!(!recorder.groups().is_empty(), "{kind} never batched");
        }
    }

    #[test]
    fn evaluation_counter_counts() {
        let mut calls = 0usize;
        let r = NelderMead {
            max_iters: 10,
            ..NelderMead::default()
        }
        .minimize(
            |x| {
                calls += 1;
                sphere(x)
            },
            &[1.0, 1.0],
        );
        assert_eq!(calls, r.evaluations);
    }
}
