//! # choco-optim
//!
//! Derivative-free classical optimizers for the variational loop.
//!
//! The paper uses COBYLA ("constrained optimization by linear
//! approximation" \[39\]) for all designs; this reproduction substitutes a
//! Nelder–Mead simplex (the default, [`NelderMead`]) and SPSA
//! ([`Spsa`]) — both standard derivative-free local optimizers over the
//! handful of `{γ_l, β_l}` parameters. The substitution is documented in
//! DESIGN.md §4; convergence-*shape* comparisons (Fig. 9a) do not depend on
//! the specific simplex method.
//!
//! Both optimizers record a per-iteration best-so-far history so the
//! convergence experiment can be regenerated.
//!
//! ```
//! use choco_optim::NelderMead;
//!
//! // minimize the sphere function
//! let result = NelderMead::default().minimize(
//!     |x| x.iter().map(|v| v * v).sum(),
//!     &[1.0, -2.0],
//! );
//! assert!(result.best_value < 1e-6);
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Outcome of an optimization run.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizeResult {
    /// Best parameter vector found.
    pub best_params: Vec<f64>,
    /// Objective at `best_params`.
    pub best_value: f64,
    /// Best-so-far objective after each iteration (for convergence plots).
    pub history: Vec<f64>,
    /// Total objective evaluations.
    pub evaluations: usize,
    /// Iterations executed.
    pub iterations: usize,
}

/// Which optimizer a solver should run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum OptimizerKind {
    /// Nelder–Mead simplex (the default; COBYLA stand-in).
    #[default]
    NelderMead,
    /// Simultaneous perturbation stochastic approximation.
    Spsa,
}

impl OptimizerKind {
    /// Runs the chosen optimizer with `max_iters` iterations from `x0`.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(
        &self,
        max_iters: usize,
        f: F,
        x0: &[f64],
    ) -> OptimizeResult {
        match self {
            OptimizerKind::NelderMead => NelderMead {
                max_iters,
                ..NelderMead::default()
            }
            .minimize(f, x0),
            OptimizerKind::Spsa => Spsa {
                max_iters,
                ..Spsa::default()
            }
            .minimize(f, x0),
        }
    }
}

impl fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerKind::NelderMead => write!(f, "nelder-mead"),
            OptimizerKind::Spsa => write!(f, "spsa"),
        }
    }
}

/// The Nelder–Mead downhill simplex method.
///
/// Standard coefficients (reflect 1, expand 2, contract ½, shrink ½) with a
/// size-based initial simplex and dual f/x tolerance termination.
#[derive(Clone, Debug)]
pub struct NelderMead {
    /// Maximum iterations (one reflection cycle each).
    pub max_iters: usize,
    /// Terminate when the simplex objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex diameter falls below this.
    pub x_tol: f64,
    /// Step used to seed the initial simplex around `x0`.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_iters: 200,
            f_tol: 1e-8,
            x_tol: 1e-8,
            initial_step: 0.4,
        }
    }
}

impl NelderMead {
    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty or the objective returns NaN.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, mut f: F, x0: &[f64]) -> OptimizeResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let n = x0.len();
        let mut evaluations = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f(x)
        };

        // Initial simplex: x0 and x0 + step·e_i.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += self.initial_step;
            simplex.push(v);
        }
        let mut values: Vec<f64> = simplex.iter().map(|x| eval(x, &mut evaluations)).collect();

        let mut history = Vec::with_capacity(self.max_iters);
        let mut iterations = 0usize;

        for _ in 0..self.max_iters {
            iterations += 1;
            // Order the simplex.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN objective"));
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];
            history.push(values[best]);

            // Termination.
            let spread = values[worst] - values[best];
            let diameter = simplex
                .iter()
                .map(|x| {
                    x.iter()
                        .zip(simplex[best].iter())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max)
                })
                .fold(0.0, f64::max);
            if spread.abs() < self.f_tol && diameter < self.x_tol {
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (idx, x) in simplex.iter().enumerate() {
                if idx == worst {
                    continue;
                }
                for (c, v) in centroid.iter_mut().zip(x.iter()) {
                    *c += v / n as f64;
                }
            }
            let blend = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
                a.iter()
                    .zip(b.iter())
                    .map(|(x, y)| x + t * (y - x))
                    .collect()
            };

            // Reflection.
            let reflected = blend(&centroid, &simplex[worst], -1.0);
            let fr = eval(&reflected, &mut evaluations);
            if fr < values[best] {
                // Expansion.
                let expanded = blend(&centroid, &simplex[worst], -2.0);
                let fe = eval(&expanded, &mut evaluations);
                if fe < fr {
                    simplex[worst] = expanded;
                    values[worst] = fe;
                } else {
                    simplex[worst] = reflected;
                    values[worst] = fr;
                }
            } else if fr < values[second_worst] {
                simplex[worst] = reflected;
                values[worst] = fr;
            } else {
                // Contraction (outside if the reflection helped, else inside).
                let t = if fr < values[worst] { -0.5 } else { 0.5 };
                let contracted = blend(&centroid, &simplex[worst], t);
                let fc = eval(&contracted, &mut evaluations);
                if fc < values[worst].min(fr) {
                    simplex[worst] = contracted;
                    values[worst] = fc;
                } else {
                    // Shrink toward the best vertex.
                    let best_point = simplex[best].clone();
                    for (idx, x) in simplex.iter_mut().enumerate() {
                        if idx == best {
                            continue;
                        }
                        *x = blend(&best_point, x, 0.5);
                        values[idx] = eval(x, &mut evaluations);
                    }
                }
            }
        }

        let (best_idx, &best_value) = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN objective"))
            .expect("non-empty simplex");
        OptimizeResult {
            best_params: simplex[best_idx].clone(),
            best_value,
            history,
            evaluations,
            iterations,
        }
    }
}

/// Simultaneous perturbation stochastic approximation (SPSA): two gradient
/// evaluations per iteration regardless of dimension — attractive when each
/// evaluation is a full quantum execution.
#[derive(Clone, Debug)]
pub struct Spsa {
    /// Iterations.
    pub max_iters: usize,
    /// Step-size numerator `a` in `a_k = a / (k + 1 + A)^α`.
    pub a: f64,
    /// Perturbation size numerator `c` in `c_k = c / (k + 1)^γ`.
    pub c: f64,
    /// Step-size decay exponent α.
    pub alpha: f64,
    /// Perturbation decay exponent γ.
    pub gamma: f64,
    /// Stability constant `A`.
    pub stability: f64,
    /// PRNG seed for the ±1 perturbation draws.
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            max_iters: 200,
            a: 0.3,
            c: 0.15,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
            seed: 0x5EED,
        }
    }
}

impl Spsa {
    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F: FnMut(&[f64]) -> f64>(&self, mut f: F, x0: &[f64]) -> OptimizeResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let n = x0.len();
        let mut rng = choco_mathkit::SplitMix64::new(self.seed);
        let mut x = x0.to_vec();
        let mut best_params = x.clone();
        let mut best_value = f(&x);
        let mut evaluations = 1usize;
        let mut history = Vec::with_capacity(self.max_iters);

        for k in 0..self.max_iters {
            let ak = self.a / (k as f64 + 1.0 + self.stability).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                .collect();
            let plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            let fp = f(&plus);
            let fm = f(&minus);
            evaluations += 2;
            for (xi, d) in x.iter_mut().zip(&delta) {
                *xi -= ak * (fp - fm) / (2.0 * ck * d);
            }
            let fx = f(&x);
            evaluations += 1;
            if fx < best_value {
                best_value = fx;
                best_params = x.clone();
            }
            history.push(best_value);
        }

        OptimizeResult {
            best_params,
            best_value,
            history,
            evaluations,
            iterations: self.max_iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }

    #[test]
    fn nelder_mead_minimizes_sphere() {
        let r = NelderMead::default().minimize(sphere, &[2.0, -1.5, 0.7]);
        assert!(r.best_value < 1e-6, "value = {}", r.best_value);
        for p in &r.best_params {
            assert!(p.abs() < 1e-2);
        }
    }

    #[test]
    fn nelder_mead_handles_rosenbrock() {
        let nm = NelderMead {
            max_iters: 2000,
            ..NelderMead::default()
        };
        let r = nm.minimize(rosenbrock, &[-1.0, 1.0]);
        assert!(r.best_value < 1e-4, "value = {}", r.best_value);
        assert!((r.best_params[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn nelder_mead_history_is_monotone_nonincreasing() {
        let r = NelderMead::default().minimize(sphere, &[3.0, 3.0]);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert_eq!(r.history.len(), r.iterations);
    }

    #[test]
    fn nelder_mead_respects_max_iters() {
        let nm = NelderMead {
            max_iters: 5,
            ..NelderMead::default()
        };
        let r = nm.minimize(sphere, &[1.0, 1.0]);
        assert!(r.iterations <= 5);
    }

    #[test]
    fn nelder_mead_terminates_early_at_optimum() {
        let nm = NelderMead {
            max_iters: 10_000,
            initial_step: 1e-9,
            ..NelderMead::default()
        };
        let r = nm.minimize(sphere, &[0.0, 0.0]);
        assert!(
            r.iterations < 100,
            "should stop early, took {}",
            r.iterations
        );
    }

    #[test]
    fn spsa_minimizes_sphere() {
        let spsa = Spsa {
            max_iters: 400,
            ..Spsa::default()
        };
        let r = spsa.minimize(sphere, &[1.0, -1.0]);
        assert!(r.best_value < 0.05, "value = {}", r.best_value);
    }

    #[test]
    fn spsa_is_deterministic_for_fixed_seed() {
        let spsa = Spsa::default();
        let a = spsa.minimize(sphere, &[1.0, 2.0]);
        let b = spsa.minimize(sphere, &[1.0, 2.0]);
        assert_eq!(a.best_params, b.best_params);
    }

    #[test]
    fn spsa_history_is_best_so_far() {
        let r = Spsa::default().minimize(sphere, &[2.0]);
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn kind_dispatch_runs_both() {
        for kind in [OptimizerKind::NelderMead, OptimizerKind::Spsa] {
            let r = kind.minimize(100, sphere, &[1.0, 1.0]);
            assert!(r.best_value < sphere(&[1.0, 1.0]));
            assert!(r.evaluations > 0);
        }
        assert_eq!(format!("{}", OptimizerKind::NelderMead), "nelder-mead");
    }

    #[test]
    fn evaluation_counter_counts() {
        let mut calls = 0usize;
        let r = NelderMead {
            max_iters: 10,
            ..NelderMead::default()
        }
        .minimize(
            |x| {
                calls += 1;
                sphere(x)
            },
            &[1.0, 1.0],
        );
        assert_eq!(calls, r.evaluations);
    }
}
