//! Quickstart: define a constrained binary optimization problem and solve
//! it with Choco-Q and every baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use choco_q::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example from the paper (Fig. 2a, 0-indexed):
    //   max  x0 + 2·x1 + 3·x2 + x3
    //   s.t. x0 − x2 = 0
    //        x0 + x1 + x3 = 1
    let problem = Problem::builder(4)
        .maximize()
        .linear(0, 1.0)
        .linear(1, 2.0)
        .linear(2, 3.0)
        .linear(3, 1.0)
        .equality([(0, 1), (2, -1)], 0)
        .equality([(0, 1), (1, 1), (3, 1)], 1)
        .name("paper running example")
        .build()?;

    println!("{problem}");

    // Ground truth from the exact classical solver.
    let optimum = solve_exact(&problem)?;
    println!(
        "exact optimum: value {} at {:?}\n",
        optimum.value,
        optimum
            .solutions
            .iter()
            .map(|b| format!("{b:04b}"))
            .collect::<Vec<_>>()
    );

    // The commute driver Δ that encodes the constraints (Eq. (5)).
    let driver = CommuteDriver::build(problem.constraints())?;
    println!("commute driver Δ = {:?}\n", driver.terms());

    // Solve with Choco-Q, the three QAOA-family baselines, and the
    // pre-QAOA quantum-annealing baseline (§VI-A).
    let choco = ChocoQSolver::new(ChocoQConfig::default());
    let penalty = PenaltyQaoaSolver::new(QaoaConfig::default());
    let cyclic = CyclicQaoaSolver::new(QaoaConfig::default());
    let hea = HeaSolver::new(QaoaConfig::default());
    let annealing =
        choco_q::solvers::AnnealingSolver::new(choco_q::solvers::AnnealingConfig::default());

    println!(
        "{:<14} {:>12} {:>18} {:>8} {:>12}",
        "solver", "success", "in-constraints", "ARG", "iterations"
    );
    let solvers: Vec<&dyn Solver> = vec![&choco, &penalty, &cyclic, &hea, &annealing];
    for solver in solvers {
        match solver.solve(&problem) {
            Ok(outcome) => {
                let m = outcome.metrics_with(&problem, &optimum);
                println!(
                    "{:<14} {:>11.2}% {:>17.2}% {:>8.3} {:>12}",
                    solver.name(),
                    m.success_rate * 100.0,
                    m.in_constraints_rate * 100.0,
                    m.arg,
                    outcome.iterations
                );
            }
            Err(e) => println!("{:<14} failed: {e}", solver.name()),
        }
    }
    Ok(())
}
