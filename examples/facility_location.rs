//! Facility location end to end: build an FLP instance, inspect the
//! encoding (slack variables for `x_ij ≤ y_i`), solve with Choco-Q, and
//! decode the answer back into facility/assignment language.
//!
//! Run with: `cargo run --release --example facility_location`

use choco_q::prelude::*;
use choco_q::problems::FlpLayout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n_facilities, n_demands, seed) = (2usize, 2usize, 7u64);
    let problem = flp(n_facilities, n_demands, seed)?;
    let layout = FlpLayout {
        n_facilities,
        n_demands,
    };

    println!("{problem}");
    println!(
        "{} variables = {} open + {} assign + {} slack\n",
        problem.n_vars(),
        n_facilities,
        n_facilities * n_demands,
        n_facilities * n_demands
    );

    let optimum = solve_exact(&problem)?;
    let outcome = ChocoQSolver::new(ChocoQConfig::default()).solve(&problem)?;
    let metrics = outcome.metrics_with(&problem, &optimum);
    println!(
        "choco-q: success {:.1}%, in-constraints {:.1}%, ARG {:.4}",
        metrics.success_rate * 100.0,
        metrics.in_constraints_rate * 100.0,
        metrics.arg
    );

    // Decode the most frequent measurement.
    let best = outcome.counts.most_frequent().expect("shots were taken");
    println!(
        "\nmost frequent outcome {best:b} (objective {}):",
        problem.evaluate(best)
    );
    for i in 0..n_facilities {
        let open = (best >> layout.y(i)) & 1 == 1;
        println!("  facility {i}: {}", if open { "OPEN" } else { "closed" });
        for j in 0..n_demands {
            if (best >> layout.x(i, j)) & 1 == 1 {
                println!("    serves demand {j}");
            }
        }
    }
    assert!(
        problem.is_feasible(best),
        "Choco-Q outcomes are always feasible"
    );
    Ok(())
}
