//! Graph coloring with conflict constraints: compare all four solvers on
//! a G1-class instance (3 vertices, 1 edge, 3 colors — 12 qubits), the
//! same shape the paper deploys on real hardware.
//!
//! Run with: `cargo run --release --example graph_coloring`

use choco_q::prelude::*;
use choco_q::problems::{gcp, GcpLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let edges = [(0usize, 1usize)];
    let n_colors = 3;
    let problem = gcp(3, &edges, n_colors, 5)?;
    let layout = GcpLayout {
        n_vertices: 3,
        n_colors,
        edges: edges.to_vec(),
    };
    println!("{problem}");

    let optimum = solve_exact(&problem)?;
    println!("optimal coloring cost: {}\n", optimum.value);

    let choco = ChocoQSolver::new(ChocoQConfig::default());
    let penalty = PenaltyQaoaSolver::new(QaoaConfig::default());
    let hea = HeaSolver::new(QaoaConfig::default());
    let cyclic = CyclicQaoaSolver::new(QaoaConfig::default());
    let solvers: Vec<&dyn Solver> = vec![&choco, &penalty, &cyclic, &hea];
    for solver in solvers {
        match solver.solve(&problem) {
            Ok(outcome) => {
                let m = outcome.metrics_with(&problem, &optimum);
                println!(
                    "{:<14} success {:>6.2}%  in-constraints {:>6.2}%",
                    solver.name(),
                    m.success_rate * 100.0,
                    m.in_constraints_rate * 100.0,
                );
                if solver.name() == "choco-q" {
                    let best = outcome.counts.most_frequent().unwrap();
                    print!("  coloring:");
                    for v in 0..3 {
                        print!(
                            " v{v}→c{}",
                            layout.color_of(best, v).expect("one color per vertex")
                        );
                    }
                    println!();
                }
            }
            Err(e) => println!("{:<14} failed: {e}", solver.name()),
        }
    }
    Ok(())
}
