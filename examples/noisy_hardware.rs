//! Hardware-style execution: transpile a Choco-Q circuit to basic gates
//! with the paper's two clean ancillas (Lemma 2), then run it under the
//! calibrated noise models of the three IBM devices — the Figure 10 setup.
//!
//! Run with: `cargo run --release --example noisy_hardware`

use choco_q::core::CommuteDriver;
use choco_q::prelude::*;
use choco_q::qsim::{transpile, TranspileOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // K1-class partition problem (8 variables).
    let problem = instance("K1", 1);
    let optimum = solve_exact(&problem)?;
    let n = problem.n_vars();

    // Build the structured circuit at hand-tuned angles, then lower it.
    let driver = CommuteDriver::build(problem.constraints())?;
    let initial = problem.first_feasible().expect("feasible");
    let ordered = driver.ordered_terms(initial);
    let poly = Arc::new(problem.cost_poly());
    let params = ChocoQSolver::initial_params(1, ordered.len());
    let circuit = ChocoQSolver::build_circuit(&driver, &poly, &ordered, initial, 1, &params);

    let mut wide = Circuit::new(n + 2);
    for g in circuit.gates() {
        wide.push(g.clone());
    }
    let lowered = transpile(&wide, &TranspileOptions::with_ancillas(vec![n, n + 1]))?;
    println!(
        "structured depth {} → transpiled depth {} ({} basic gates)\n",
        circuit.depth(),
        lowered.depth(),
        lowered.len()
    );

    println!(
        "{:<16} {:>14} {:>18}",
        "device", "in-constraints", "vs noiseless"
    );
    let mut rng = StdRng::seed_from_u64(11);
    let clean = NoiseModel::ideal().sample_noisy(&lowered, 4000, 1, &mut rng);
    let clean_feasible = clean.mass_where(|bits| problem.is_feasible(bits & ((1 << n) - 1)));
    for device in Device::ALL {
        let model = device.model();
        let counts = model.noise().sample_noisy(&lowered, 4000, 40, &mut rng);
        // Mask out the two ancilla qubits before checking feasibility.
        let feasible = counts.mass_where(|bits| problem.is_feasible(bits & ((1 << n) - 1)));
        println!(
            "{:<16} {:>13.1}% {:>17.1}%",
            model.name,
            feasible * 100.0,
            100.0 * feasible / clean_feasible
        );
    }
    println!(
        "\n(noiseless in-constraints rate: {:.1}%; optimum value {})",
        clean_feasible * 100.0,
        optimum.value
    );
    Ok(())
}
