//! Balanced k-partition end to end: the one domain where the cyclic
//! baseline is competitive (all constraints are in summation format), yet
//! Choco-Q still wins because the vertex and balance constraints *share
//! variables* — exactly the paper's §V-B analysis.
//!
//! Run with: `cargo run --release --example k_partition`

use choco_q::prelude::*;
use choco_q::problems::{kpp, KppLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A weighted 6-cycle split into two balanced blocks.
    let edges: Vec<(usize, usize, f64)> = (0..6)
        .map(|v| (v, (v + 1) % 6, 1.0 + (v % 3) as f64))
        .collect();
    let problem = kpp(6, &edges, 2, true, 3)?;
    let layout = KppLayout {
        n_vertices: 6,
        n_blocks: 2,
        edges: edges.clone(),
    };
    println!("{problem}");

    let optimum = solve_exact(&problem)?;
    println!("optimal cut weight: {}\n", optimum.value);

    let choco = ChocoQSolver::new(ChocoQConfig::default());
    let cyclic = CyclicQaoaSolver::new(QaoaConfig::default());
    for (name, outcome) in [
        ("choco-q", choco.solve(&problem)?),
        ("cyclic", cyclic.solve(&problem)?),
    ] {
        let m = outcome.metrics_with(&problem, &optimum);
        println!(
            "{name:<8} success {:>6.2}%  in-constraints {:>6.2}%  ARG {:.3}",
            m.success_rate * 100.0,
            m.in_constraints_rate * 100.0,
            m.arg
        );
        if name == "choco-q" {
            let best = outcome.counts.most_frequent().expect("shots");
            let blocks: Vec<usize> = (0..6)
                .map(|v| layout.block_of(best, v).expect("one block per vertex"))
                .collect();
            println!(
                "  best partition: {:?} | cut weight {}",
                blocks,
                layout.cut_weight(best)
            );
        }
    }
    Ok(())
}
