//! `choco-serve` integration tests: byte-identity with `choco-cli run`
//! at any worker count, kill/abort-and-resume, admission control
//! (oversized jobs, queue caps, duplicates, malformed requests), and
//! cross-request plan-cache sharing observed through the `stats` op.

use choco_q::prelude::*;
use choco_q::qsim::EngineKind;
use choco_q::runner::serve::{serve, ServeOptions};
use choco_q::runner::{build_instances, execute, FaultPlan};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// Four fast cells (2 solvers × 2 seeds), same shape as the
/// fault-tolerance suite.
const SPEC: &str = r#"
name = "serve-grid"
description = "serve integration grid"

[grid]
problems = ["F1"]
solvers = ["choco-q", "hea"]
seeds = [1, 2]

[config]
shots = 300
max_iters = 4
restarts = 1
transpiled_stats = false
"#;

/// A unique, empty scratch directory per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("choco_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A `Write` sink the test can read back after the daemon exits.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs one stdin/stdout daemon session to completion (EOF drains all
/// jobs) and returns the emitted event lines.
fn run_session(opts: &ServeOptions, input: &str) -> Vec<String> {
    let buf = SharedBuf::default();
    serve(opts, std::io::Cursor::new(input.to_string()), buf.clone()).expect("serve session");
    let bytes = buf.0.lock().unwrap().clone();
    String::from_utf8(bytes)
        .expect("utf-8 events")
        .lines()
        .map(str::to_string)
        .collect()
}

fn serve_opts(state_dir: PathBuf, workers: usize) -> ServeOptions {
    ServeOptions {
        state_dir,
        queue_cap: 256,
        run: RunOptions {
            workers,
            ..RunOptions::default()
        },
        ..ServeOptions::default()
    }
}

fn count_events(events: &[String], kind: &str) -> usize {
    let needle = format!("\"event\": \"{kind}\"");
    events.iter().filter(|e| e.contains(&needle)).count()
}

#[test]
fn serve_report_is_byte_identical_to_run_at_any_worker_count() {
    let spec = ExperimentSpec::parse_str(SPEC).expect("spec");
    let baseline = execute(&spec, &RunOptions::default())
        .expect("baseline run")
        .to_json();
    for workers in [1usize, 2, 4] {
        let dir = scratch(&format!("bytes_w{workers}"));
        let spec_file = dir.join("spec.toml");
        std::fs::write(&spec_file, SPEC).expect("write spec");
        let opts = serve_opts(dir.join("state"), workers);
        let input = format!(
            "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
            spec_file.display()
        );
        let events = run_session(&opts, &input);
        assert_eq!(count_events(&events, "accepted"), 1, "{events:?}");
        assert_eq!(count_events(&events, "record"), 4, "{events:?}");
        assert_eq!(count_events(&events, "done"), 1, "{events:?}");
        let report =
            std::fs::read_to_string(opts.state_dir.join("serve-grid.json")).expect("daemon report");
        assert_eq!(
            report, baseline,
            "serve report at {workers} workers must be byte-identical to choco-cli run"
        );
        assert!(opts.state_dir.join("serve-grid.done").exists());
    }
}

#[test]
fn resume_completes_a_partial_journal_with_an_identical_report() {
    // Full reference run to harvest a complete journal.
    let full_dir = scratch("resume_full");
    let spec_file = full_dir.join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let full_opts = serve_opts(full_dir.join("state"), 1);
    run_session(
        &full_opts,
        &format!(
            "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
            spec_file.display()
        ),
    );
    let full_report =
        std::fs::read_to_string(full_opts.state_dir.join("serve-grid.json")).expect("full report");
    let journal = std::fs::read_to_string(full_opts.state_dir.join("serve-grid.journal"))
        .expect("full journal");
    let lines: Vec<&str> = journal.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 cells");

    // A killed daemon's state: the spec, a journal holding the header +
    // 2 completed cells, and a torn trailing line (the ≤1-line loss the
    // journal guarantees).
    let partial_opts = serve_opts(scratch("resume_partial").join("state"), 2);
    std::fs::create_dir_all(&partial_opts.state_dir).expect("state dir");
    std::fs::write(partial_opts.state_dir.join("serve-grid.spec.toml"), SPEC)
        .expect("persist spec");
    let torn = format!(
        "{}\n{}\n{}\n{{\"index\": 2, \"dur",
        lines[0], lines[1], lines[2]
    );
    std::fs::write(partial_opts.state_dir.join("serve-grid.journal"), torn).expect("torn journal");

    // Empty input: the daemon resumes at startup, re-runs the missing
    // cells, drains, and exits.
    let events = run_session(&partial_opts, "");
    assert!(
        events
            .iter()
            .any(|e| e.contains("\"resumed\": [\"serve-grid\"]")),
        "{events:?}"
    );
    assert_eq!(count_events(&events, "record"), 2, "{events:?}");
    assert_eq!(count_events(&events, "done"), 1, "{events:?}");
    let resumed_report = std::fs::read_to_string(partial_opts.state_dir.join("serve-grid.json"))
        .expect("resumed report");
    assert_eq!(
        resumed_report, full_report,
        "resume must reproduce the uninterrupted report byte for byte"
    );
}

#[test]
fn oversized_jobs_are_rejected_at_admission_with_guidance() {
    // flp:4x4 → 36 variables: beyond every engine's register limit, but
    // well within what the generator itself can build.
    let opts = serve_opts(scratch("oversized").join("state"), 1);
    let input = r#"{"op": "submit", "job": {"name": "big", "problems": ["flp:4x4"], "solvers": ["choco-q"], "seeds": [1]}}
"#;
    let events = run_session(&opts, input);
    let rejected: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\": \"rejected\""))
        .collect();
    assert_eq!(rejected.len(), 1, "{events:?}");
    assert!(
        rejected[0].contains("\"kind\": \"too_large\""),
        "{rejected:?}"
    );
    assert!(rejected[0].contains("flp:4x4"), "{rejected:?}");
    // Rejections leave no state behind.
    assert!(!opts.state_dir.join("big.spec.toml").exists());
    assert!(!opts.state_dir.join("big.journal").exists());
}

#[test]
fn admission_rejects_overflow_duplicates_and_malformed_requests() {
    // Queue cap below the job's cell count: structured queue_full.
    let mut opts = serve_opts(scratch("admission").join("state"), 1);
    opts.queue_cap = 2;
    let spec_file = opts.state_dir.parent().unwrap().join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let submit = format!(
        "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
        spec_file.display()
    );
    let events = run_session(&opts, &submit);
    assert!(
        events
            .iter()
            .any(|e| e.contains("\"kind\": \"queue_full\"")),
        "{events:?}"
    );

    // Malformed requests are error events, never crashes; a duplicate
    // submission of an accepted job is rejected.
    let opts = serve_opts(scratch("admission2").join("state"), 2);
    let quick_job = r#"{"op": "submit", "job": {"name": "dup", "problems": ["F1"], "solvers": ["choco-q"], "seeds": [1], "shots": 200, "max_iters": 2, "restarts": 1}}"#;
    let input = format!(
        "this is not json\n\
         {{\"op\": \"frobnicate\"}}\n\
         {{\"op\": \"submit\"}}\n\
         {{\"op\": \"submit\", \"id\": \"bad/id\", \"job\": {{\"name\": \"x\", \"problems\": [\"F1\"]}}}}\n\
         {{\"op\": \"submit\", \"job\": {{\"name\": \"t\", \"problems\": [\"F1\"], \"shotss\": 1}}}}\n\
         {quick_job}\n\
         {quick_job}\n"
    );
    let events = run_session(&opts, &input);
    assert!(count_events(&events, "error") >= 2, "{events:?}");
    assert!(
        events.iter().any(|e| e.contains("bad request line")),
        "{events:?}"
    );
    assert!(
        events.iter().any(|e| e.contains("unknown op `frobnicate`")),
        "{events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.contains("exactly one of `spec_path`, `spec_toml`, or `job`")),
        "{events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.contains("\"kind\": \"bad_request\"") && e.contains("bad/id")),
        "{events:?}"
    );
    assert!(events.iter().any(|e| e.contains("shotss")), "{events:?}");
    assert_eq!(count_events(&events, "accepted"), 1, "{events:?}");
    assert!(
        events.iter().any(|e| e.contains("\"kind\": \"duplicate\"")),
        "{events:?}"
    );
    assert_eq!(count_events(&events, "done"), 1, "{events:?}");
}

/// Extracts the first `"key": <integer>` occurrence from an event line.
fn int_field(line: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = line
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {line}"));
    line[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer field")
}

#[test]
fn plan_cache_is_shared_across_requests() {
    // Interactive session over OS pipes: submit a compact-engine job,
    // wait for it, read the cache stats, then submit a second job of
    // the same shape and assert it compiled nothing new.
    let opts = ServeOptions {
        state_dir: scratch("cache").join("state"),
        queue_cap: 64,
        run: RunOptions {
            workers: 1,
            engine: Some(EngineKind::Compact),
            ..RunOptions::default()
        },
        ..ServeOptions::default()
    };
    let (req_read, req_write) = std::io::pipe().expect("request pipe");
    let (event_read, event_write) = std::io::pipe().expect("event pipe");
    std::thread::scope(|scope| {
        scope.spawn(|| {
            serve(&opts, BufReader::new(req_read), event_write).expect("serve session");
        });
        let mut requests = req_write;
        let mut events = BufReader::new(event_read).lines();
        let mut next = |kind: &str| -> String {
            let needle = format!("\"event\": \"{kind}\"");
            loop {
                let line = events
                    .next()
                    .expect("daemon closed its event stream")
                    .expect("event line");
                if line.contains(&needle) {
                    return line;
                }
            }
        };
        let job = |name: &str| {
            format!(
                "{{\"op\": \"submit\", \"job\": {{\"name\": \"{name}\", \"problems\": [\"F1\"], \
                 \"solvers\": [\"choco-q\"], \"seeds\": [1], \"shots\": 300, \"max_iters\": 4, \
                 \"restarts\": 1}}}}\n"
            )
        };
        next("ready");
        requests
            .write_all(job("cold").as_bytes())
            .expect("submit cold");
        next("done");
        requests
            .write_all(b"{\"op\": \"stats\"}\n")
            .expect("stats 1");
        let cold = next("stats");
        assert!(cold.contains("\"engine\": \"compact\""), "{cold}");
        let cold_compilations = int_field(&cold, "compilations");
        let cold_hits = int_field(&cold, "hits");
        assert!(cold_compilations > 0, "{cold}");

        requests
            .write_all(job("warm").as_bytes())
            .expect("submit warm");
        next("done");
        requests
            .write_all(b"{\"op\": \"stats\"}\n")
            .expect("stats 2");
        let warm = next("stats");
        let warm_compilations = int_field(&warm, "compilations");
        let warm_hits = int_field(&warm, "hits");
        assert_eq!(
            warm_compilations, cold_compilations,
            "an identically-shaped job must compile zero new plans: {warm}"
        );
        assert!(warm_hits > cold_hits, "cold {cold} vs warm {warm}");

        requests
            .write_all(b"{\"op\": \"shutdown\"}\n")
            .expect("shutdown");
        next("shutdown");
        drop(requests);
    });
    // Both jobs produced identical reports (same grid, different name is
    // only in the header fields).
    let cold_report =
        std::fs::read_to_string(opts.state_dir.join("cold.json")).expect("cold report");
    let warm_report =
        std::fs::read_to_string(opts.state_dir.join("warm.json")).expect("warm report");
    assert_eq!(
        cold_report.replace("\"cold\"", "\"X\""),
        warm_report.replace("\"warm\"", "\"X\""),
        "cache reuse must not change results"
    );
}

#[test]
fn killed_daemon_resumes_and_reproduces_the_report() {
    let exe = env!("CARGO_BIN_EXE_choco-cli");
    let dir = scratch("kill");
    let state = dir.join("state");
    let spec_file = dir.join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let baseline = execute(
        &ExperimentSpec::parse_str(SPEC).expect("spec"),
        &RunOptions::default(),
    )
    .expect("baseline run")
    .to_json();

    // Session 1: submit, wait for the first streamed record, SIGKILL.
    let mut child = std::process::Command::new(exe)
        .args(["serve", "--state-dir"])
        .arg(&state)
        .args(["--workers", "1"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn daemon");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            format!(
                "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
                spec_file.display()
            )
            .as_bytes(),
        )
        .expect("submit");
    let stdout = BufReader::new(child.stdout.take().expect("stdout"));
    for line in stdout.lines() {
        let line = line.expect("daemon event");
        if line.contains("\"event\": \"record\"") {
            break;
        }
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Session 2: empty stdin — resume, drain, exit.
    let status = std::process::Command::new(exe)
        .args(["serve", "--state-dir"])
        .arg(&state)
        .args(["--workers", "2"])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("restart daemon");
    assert!(status.success(), "resume session failed: {status}");
    let report =
        std::fs::read_to_string(state.join("serve-grid.json")).expect("report after resume");
    assert_eq!(
        report, baseline,
        "kill-and-resume must reproduce the uninterrupted report byte for byte"
    );
}

#[test]
fn cancel_drains_cells_cooperatively_and_still_finalizes() {
    // A delay fault pins the single worker on cell 0 long enough for the
    // cancel (the very next request line) to land first: cell 0 exits
    // mid-solve at its next objective evaluation, the queued cells drain
    // via the fast path, and both paths produce the same record.
    let mut opts = serve_opts(scratch("cancel").join("state"), 1);
    opts.run.faults = Some(Arc::new(FaultPlan::parse("delay@0:300").unwrap()));
    let dir = opts.state_dir.parent().unwrap().to_path_buf();
    let spec_file = dir.join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let input = format!(
        "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n\
         {{\"op\": \"cancel\", \"id\": \"serve-grid\"}}\n\
         {{\"op\": \"cancel\"}}\n",
        spec_file.display()
    );
    let events = run_session(&opts, &input);
    let cancelled: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\": \"cancelled\""))
        .collect();
    assert_eq!(cancelled.len(), 1, "{events:?}");
    assert!(
        cancelled[0].contains("\"active\": true")
            && cancelled[0].contains("\"done\": false")
            && cancelled[0].contains("\"known\": true"),
        "{cancelled:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.contains("cancel needs a string `id`")),
        "{events:?}"
    );
    let records: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\": \"record\""))
        .collect();
    assert_eq!(records.len(), 4, "{events:?}");
    for record in &records {
        assert!(
            record.contains("\"error_kind\": \"cancelled\"") && record.contains("job cancelled"),
            "cancelled cells must land as structured records: {record}"
        );
    }
    // The job still finalizes: degraded report + `.done`, so the state
    // dir does not accumulate zombies.
    assert_eq!(count_events(&events, "done"), 1, "{events:?}");
    assert!(opts.state_dir.join("serve-grid.done").exists());

    // Cancel after completion (fresh session over the same state dir):
    // idempotent no-op, reported as done.
    let events = run_session(&opts, "{\"op\": \"cancel\", \"id\": \"serve-grid\"}\n");
    assert!(
        events.iter().any(|e| e.contains("\"event\": \"cancelled\"")
            && e.contains("\"active\": false")
            && e.contains("\"done\": true")
            && e.contains("\"known\": true")),
        "{events:?}"
    );

    // Cancel before any submission: unknown id, all three flags false.
    let opts = serve_opts(scratch("cancel_unknown").join("state"), 1);
    let events = run_session(&opts, "{\"op\": \"cancel\", \"id\": \"ghost\"}\n");
    assert!(
        events.iter().any(|e| e.contains("\"event\": \"cancelled\"")
            && e.contains("\"active\": false")
            && e.contains("\"done\": false")
            && e.contains("\"known\": false")),
        "{events:?}"
    );

    // A job that finished failed/aborted never writes `.done` but leaves
    // its journal behind; `known: true` tells it apart from a ghost id.
    // (A journal without a spec is exactly that residue — resume skips
    // it, so it is inert state, not an active job.)
    let opts = serve_opts(scratch("cancel_failed").join("state"), 1);
    std::fs::create_dir_all(&opts.state_dir).expect("state dir");
    std::fs::write(opts.state_dir.join("wrecked.journal"), b"").expect("journal residue");
    let events = run_session(&opts, "{\"op\": \"cancel\", \"id\": \"wrecked\"}\n");
    assert!(
        events.iter().any(|e| e.contains("\"event\": \"cancelled\"")
            && e.contains("\"active\": false")
            && e.contains("\"done\": false")
            && e.contains("\"known\": true")),
        "{events:?}"
    );
}

#[test]
fn per_job_knobs_override_daemon_settings() {
    // An (effectively) already-expired job deadline: every cell lands as
    // a structured timeout, and the job still finalizes with a report.
    let opts = serve_opts(scratch("knob_deadline").join("state"), 2);
    let dir = opts.state_dir.parent().unwrap().to_path_buf();
    let spec_file = dir.join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let input = format!(
        "{{\"op\": \"submit\", \"spec_path\": \"{}\", \"deadline_secs\": 0.000001}}\n",
        spec_file.display()
    );
    let events = run_session(&opts, &input);
    let records: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\": \"record\""))
        .collect();
    assert_eq!(records.len(), 4, "{events:?}");
    for record in &records {
        assert!(
            record.contains("\"error_kind\": \"timeout\""),
            "an expired job deadline must produce timeout records: {record}"
        );
    }
    assert_eq!(count_events(&events, "done"), 1, "{events:?}");

    // A per-job retry budget heals a transient fault the daemon-wide
    // settings (retries = 0) would surface as an error.
    let mut opts = serve_opts(scratch("knob_retries").join("state"), 1);
    opts.run.faults = Some(Arc::new(FaultPlan::parse("panic@0:1").unwrap()));
    let input = format!(
        "{{\"op\": \"submit\", \"spec_path\": \"{}\", \"retries\": 1}}\n",
        spec_file.display()
    );
    let events = run_session(&opts, &input);
    assert_eq!(count_events(&events, "done"), 1, "{events:?}");
    let report =
        std::fs::read_to_string(opts.state_dir.join("serve-grid.json")).expect("healed report");
    assert!(
        !report.contains("\"status\": \"error\""),
        "the per-job retry budget must heal the injected panic"
    );
    assert!(report.contains("\"retries\": 1"), "retry must be counted");

    // A malformed knob is a structured rejection naming the key, and
    // leaves no state behind.
    let opts = serve_opts(scratch("knob_bad").join("state"), 1);
    let input = format!(
        "{{\"op\": \"submit\", \"spec_path\": \"{}\", \"deadline_secs\": \"soon\"}}\n",
        spec_file.display()
    );
    let events = run_session(&opts, &input);
    assert!(
        events
            .iter()
            .any(|e| e.contains("\"kind\": \"bad_request\"") && e.contains("deadline_secs")),
        "{events:?}"
    );
    assert!(!opts.state_dir.join("serve-grid.spec.toml").exists());
    assert!(!opts.state_dir.join("serve-grid.journal").exists());

    // Out-of-range second counts are the same structured rejection:
    // 1e300 would overflow `Duration::from_secs_f64`, 1e19 would
    // overflow `Instant + Duration` — either panic would land on the
    // control thread and wedge the worker pool. The follow-up submit
    // proves the daemon survived and kept serving.
    for (case, key, bad) in [
        ("dur_overflow", "deadline_secs", "1e300"),
        ("instant_overflow", "deadline_secs", "1e19"),
        ("cell_overflow", "cell_timeout", "1e300"),
        ("negative", "cell_timeout", "-4"),
    ] {
        let opts = serve_opts(scratch(&format!("knob_range_{case}")).join("state"), 1);
        let input = format!(
            "{{\"op\": \"submit\", \"spec_path\": \"{spec}\", \"{key}\": {bad}}}\n\
             {{\"op\": \"submit\", \"spec_path\": \"{spec}\"}}\n",
            spec = spec_file.display()
        );
        let events = run_session(&opts, &input);
        assert!(
            events
                .iter()
                .any(|e| e.contains("\"kind\": \"bad_request\"") && e.contains(key)),
            "{key}={bad}: {events:?}"
        );
        assert_eq!(count_events(&events, "done"), 1, "{key}={bad}: {events:?}");
    }
}

#[test]
fn mem_budget_admission_has_an_exact_boundary() {
    // The spec's cells are all dense-engine full-register estimates:
    // 2^n × 16 bytes per worker. Compute the exact requirement and probe
    // one byte below (rejected) and at it (accepted).
    let spec = ExperimentSpec::parse_str(SPEC).expect("spec");
    let cells = spec.expand_cells(false);
    let instances = build_instances(&cells).expect("instances");
    let n = instances
        .values()
        .next()
        .expect("instance")
        .problem
        .n_vars() as u32;
    let per_worker = 16u64 << n;
    let workers = 2usize;
    let required = per_worker * workers as u64;

    let submit = |opts: &ServeOptions| {
        let dir = opts.state_dir.parent().unwrap().to_path_buf();
        let spec_file = dir.join("spec.toml");
        std::fs::write(&spec_file, SPEC).expect("write spec");
        run_session(
            opts,
            &format!(
                "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
                spec_file.display()
            ),
        )
    };

    let mut tight = serve_opts(scratch("mem_tight").join("state"), workers);
    tight.mem_budget = Some(required - 1);
    let events = submit(&tight);
    let rejected: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\": \"rejected\""))
        .collect();
    assert_eq!(rejected.len(), 1, "{events:?}");
    assert!(
        rejected[0].contains("\"kind\": \"too_large\"")
            && rejected[0].contains("--mem-budget")
            && rejected[0].contains("workers"),
        "{rejected:?}"
    );
    // Rejections leave no state behind.
    assert!(!tight.state_dir.join("serve-grid.spec.toml").exists());
    assert!(!tight.state_dir.join("serve-grid.journal").exists());

    let mut exact = serve_opts(scratch("mem_exact").join("state"), workers);
    exact.mem_budget = Some(required);
    let events = submit(&exact);
    assert_eq!(count_events(&events, "accepted"), 1, "{events:?}");
    assert_eq!(count_events(&events, "done"), 1, "{events:?}");
    assert!(exact.state_dir.join("serve-grid.done").exists());
}

#[test]
fn health_reports_pool_and_state_dir_vitals() {
    let opts = serve_opts(scratch("health").join("state"), 2);
    let dir = opts.state_dir.parent().unwrap().to_path_buf();
    let spec_file = dir.join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let input = format!(
        "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n\
         {{\"op\": \"health\"}}\n\
         {{\"op\": \"stats\"}}\n",
        spec_file.display()
    );
    let events = run_session(&opts, &input);
    let health: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\": \"health\""))
        .collect();
    assert_eq!(health.len(), 1, "{events:?}");
    for key in [
        "\"workers\": 2",
        "\"workers_alive\"",
        "\"worker_restarts\"",
        "\"journal_bytes\"",
        "\"mem_high_water\"",
        "\"mem_budget\": null",
        "\"plan_shapes\"",
    ] {
        assert!(health[0].contains(key), "missing {key}: {}", health[0]);
    }
    let stats: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\": \"stats\""))
        .collect();
    assert_eq!(stats.len(), 1, "{events:?}");
    assert!(
        stats[0].contains("\"worker_restarts\": [0, 0]"),
        "{}",
        stats[0]
    );
    assert!(
        stats[0].contains("\"jobs\": [{\"id\": \"serve-grid\", \"cells\": 4,"),
        "{}",
        stats[0]
    );
}

#[test]
fn gc_done_prunes_spec_and_journal_but_keeps_reports() {
    let mut opts = serve_opts(scratch("gc").join("state"), 1);
    opts.gc_done = true;
    let dir = opts.state_dir.parent().unwrap().to_path_buf();
    let spec_file = dir.join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let events = run_session(
        &opts,
        &format!(
            "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
            spec_file.display()
        ),
    );
    assert_eq!(count_events(&events, "done"), 1, "{events:?}");
    assert!(!opts.state_dir.join("serve-grid.spec.toml").exists());
    assert!(!opts.state_dir.join("serve-grid.journal").exists());
    assert!(opts.state_dir.join("serve-grid.json").exists());
    assert!(opts.state_dir.join("serve-grid.done").exists());
    // The kept `.done` marker still blocks an id reuse.
    let events = run_session(
        &opts,
        &format!(
            "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
            spec_file.display()
        ),
    );
    assert!(
        events.iter().any(|e| e.contains("\"kind\": \"duplicate\"")),
        "{events:?}"
    );
}

#[test]
fn sigterm_drain_and_sigkill_resume_reach_the_same_report() {
    let exe = env!("CARGO_BIN_EXE_choco-cli");
    if !std::path::Path::new("/bin/kill").exists()
        && !std::path::Path::new("/usr/bin/kill").exists()
    {
        eprintln!("skipping: no kill binary for signal delivery");
        return;
    }
    let baseline = execute(
        &ExperimentSpec::parse_str(SPEC).expect("spec"),
        &RunOptions::default(),
    )
    .expect("baseline run")
    .to_json();
    let dir = scratch("signals");
    let spec_file = dir.join("spec.toml");
    std::fs::write(&spec_file, SPEC).expect("write spec");
    let submit = format!(
        "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
        spec_file.display()
    );
    let spawn = |state: &PathBuf| {
        std::process::Command::new(exe)
            .args(["serve", "--state-dir"])
            .arg(state)
            .args(["--workers", "1"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn daemon")
    };

    // Leg 1: SIGTERM after the first record. The daemon drains the
    // remaining cells within the (default 60 s) window, writes the
    // report, and exits zero.
    let term_state = dir.join("term");
    let mut child = spawn(&term_state);
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(submit.as_bytes())
        .expect("submit");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout")).lines();
    for line in stdout.by_ref() {
        if line
            .expect("daemon event")
            .contains("\"event\": \"record\"")
        {
            break;
        }
    }
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let mut saw_shutdown = false;
    for line in stdout {
        let line = line.expect("daemon event");
        if line.contains("\"event\": \"shutdown\"") {
            assert!(
                line.contains("\"mode\": \"signal-drain\""),
                "a drain that finishes in time reports signal-drain: {line}"
            );
            saw_shutdown = true;
        }
    }
    assert!(saw_shutdown, "daemon must announce its shutdown mode");
    let status = child.wait().expect("reap");
    assert!(status.success(), "SIGTERM drain must exit zero: {status}");
    let term_report =
        std::fs::read_to_string(term_state.join("serve-grid.json")).expect("drained report");
    assert_eq!(term_report, baseline, "SIGTERM drain diverged from run");

    // Leg 2: SIGKILL mid-job, then a restart with empty input resumes
    // from the journal and lands on the same bytes.
    let kill_state = dir.join("kill");
    let mut child = spawn(&kill_state);
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(submit.as_bytes())
        .expect("submit");
    let stdout = BufReader::new(child.stdout.take().expect("stdout"));
    for line in stdout.lines() {
        if line
            .expect("daemon event")
            .contains("\"event\": \"record\"")
        {
            break;
        }
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    let status = std::process::Command::new(exe)
        .args(["serve", "--state-dir"])
        .arg(&kill_state)
        .args(["--workers", "2"])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("restart daemon");
    assert!(status.success(), "resume session failed: {status}");
    let kill_report =
        std::fs::read_to_string(kill_state.join("serve-grid.json")).expect("resumed report");
    assert_eq!(
        kill_report, baseline,
        "SIGKILL-resume diverged from the SIGTERM drain"
    );
}

/// Template state for the journal-fuzz property: a completed one-cell
/// job's spec text, journal bytes, and report (computed once).
fn fuzz_template() -> &'static (String, String, String) {
    static TEMPLATE: OnceLock<(String, String, String)> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let spec_text = r#"
name = "fuzz"
[grid]
problems = ["F1"]
solvers = ["choco-q"]
seeds = [1]
[config]
shots = 200
max_iters = 2
restarts = 1
transpiled_stats = false
"#;
        let dir = scratch("fuzz_template");
        let spec_file = dir.join("spec.toml");
        std::fs::write(&spec_file, spec_text).expect("write spec");
        let opts = serve_opts(dir.join("state"), 1);
        run_session(
            &opts,
            &format!(
                "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
                spec_file.display()
            ),
        );
        let journal =
            std::fs::read_to_string(opts.state_dir.join("fuzz.journal")).expect("journal");
        let report = std::fs::read_to_string(opts.state_dir.join("fuzz.json")).expect("report");
        (spec_text.to_string(), journal, report)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrarily mangled journals never panic the daemon: every case
    /// either finishes the job or surfaces a structured `error` event —
    /// and a *truncation* mangling (the torn-tail case the journal is
    /// designed for) still reproduces the reference report exactly.
    #[test]
    fn mangled_journals_never_panic_the_daemon(
        cut in 0usize..2048,
        flip_at in 0usize..2048,
        flip_bit in 0u32..8,
        mode in 0u32..3,
    ) {
        let (spec_text, journal, report) = fuzz_template();
        let mangled: Vec<u8> = match mode {
            // Truncation: a torn tail (recoverable) or a torn header.
            0 => journal.as_bytes()[..cut.min(journal.len())].to_vec(),
            // Bit flip somewhere in the journal.
            1 => {
                let mut bytes = journal.as_bytes().to_vec();
                if !bytes.is_empty() {
                    let i = flip_at % bytes.len();
                    bytes[i] ^= 1 << flip_bit;
                }
                bytes
            }
            // Garbage appended as an extra line.
            _ => {
                let mut bytes = journal.as_bytes().to_vec();
                bytes.extend_from_slice(b"{\"index\": 99, \"record\": garbage\n");
                bytes
            }
        };
        let dir = scratch(&format!("fuzz_{cut}_{flip_at}_{flip_bit}_{mode}"));
        let state = dir.join("state");
        std::fs::create_dir_all(&state).unwrap();
        std::fs::write(state.join("fuzz.spec.toml"), spec_text).unwrap();
        std::fs::write(state.join("fuzz.journal"), &mangled).unwrap();
        // Must not panic; must either complete the job or emit an error.
        let events = run_session(&serve_opts(state.clone(), 1), "");
        let finished = state.join("fuzz.done").exists();
        let errored = events.iter().any(|e| e.contains("\"event\": \"error\""));
        prop_assert!(finished || errored, "{events:?}");
        // A bit flip can land inside a stored record and yield different
        // but well-formed JSON, so byte-identity is only guaranteed for
        // the crash contract the journal is designed for: truncation
        // after a complete header (a torn *tail*, not a torn header).
        let header_end = journal.find('\n').expect("header line") + 1;
        if mode == 0 && cut.min(journal.len()) >= header_end {
            prop_assert!(finished, "torn tails must stay resumable: {events:?}");
            let resumed = std::fs::read_to_string(state.join("fuzz.json")).unwrap();
            prop_assert_eq!(&resumed, report);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
