//! Differential tests for the feasible-subspace engines.
//!
//! Random Choco-Q circuits over all six problem families must agree
//! between four independent executions — the sparse engine
//! ([`SparseStateVector`]), the compact plan-replay engine
//! ([`EngineKind::Compact`] through a [`SimWorkspace`], at 1/2/4 worker
//! threads), the dense strided engine ([`StateVector`], at 1/2/4 worker
//! threads), and the scan-and-mask oracle ([`ScalarStateVector`]) — with
//! **byte-identical** amplitudes/expectations between sparse and compact,
//! 1e-10 agreement against the oracle, and *identical* deterministic
//! sampling streams everywhere. The adversarial half drives circuits
//! that break subspace confinement (penalty/HEA-style mixers,
//! noise-trajectory gate soup) and asserts the auto engine's dense
//! fallback — and the compact engine's compilation refusal — trip while
//! results stay oracle-exact.

use choco_q::core::{support_profile, support_profile_with, ChocoQSolver, CommuteDriver};
use choco_q::mathkit::SplitMix64;
use choco_q::model::Problem;
use choco_q::qsim::oracle::ScalarStateVector;
use choco_q::qsim::{
    Circuit, EngineKind, NoiseModel, SimConfig, SimEngine, SimWorkspace, SparseStateVector,
    StateVector,
};
use choco_q::runner::ProblemRef;
use proptest::prelude::*;
use std::sync::Arc;

/// The families of the evaluation: FLP, GCP, KPP, exact cover, knapsack,
/// the native-inequality families (knapsack with a first-class `≤` budget
/// row, multi-dimensional knapsack, assignment with capacities — whose
/// circuits run on the driver-encoded register, wider than `n_vars`),
/// plus random builder instances. Shapes are chosen so every register
/// lands in 4..=14 qubits (dense-comparable sizes).
const FAMILY_SHAPES: [&[&str]; 8] = [
    &["flp:2x1", "flp:2x2"],
    &["gcp:2x1x2", "gcp:3x2x2", "gcp:3x3x2"],
    &["kpp:4x3x2", "kpp:4x4x2", "kpp:6x5x2"],
    &["cover:4x6", "cover:5x8", "cover:6x12"],
    &["knapsack:4x6", "knapsack:5x8", "knapsack:6x10"],
    &[
        "knapsack:4x6:native",
        "knapsack:5x8:native",
        "knapsack:6x10:native",
    ],
    &["mdknap:4x2", "mdknap:5x2"],
    &["assign:2x2", "assign:2x3"],
];

/// A random summation-constrained instance from the problem builder
/// (family index 8), n in 4..=14.
fn random_instance(seed: u64) -> Problem {
    let mut rng = SplitMix64::new(seed ^ 0xFEED);
    let n = 4 + (rng.gen_range(0, 11) as usize); // 4..=14
    let mut b = Problem::builder(n);
    if rng.gen_bool(0.5) {
        b = b.maximize();
    }
    for i in 0..n {
        b = b.linear(i, rng.gen_range_f64(-3.0, 3.0));
    }
    for _ in 0..n / 3 {
        let i = rng.gen_range(0, n as u64) as usize;
        let j = rng.gen_range(0, n as u64) as usize;
        if i != j {
            b = b.quadratic(i, j, rng.gen_range_f64(-2.0, 2.0));
        }
    }
    // One or two disjoint summation equalities keep the kernel ternary.
    let half = n / 2;
    let k1 = 1 + rng.gen_range(0, half as u64 - 1) as i64;
    b = b.equality((0..half).map(|i| (i, 1i64)), k1.min(half as i64));
    if rng.gen_bool(0.6) && n - half >= 2 {
        let k2 = 1 + rng.gen_range(0, (n - half) as u64 - 1) as i64;
        b = b.equality((half..n).map(|i| (i, 1i64)), k2.min((n - half) as i64));
    }
    b.build().expect("valid random instance")
}

/// The instance for (family, seed): families 0..=7 come from the suite
/// generators, 8 from the random builder.
fn family_instance(family: usize, seed: u64) -> Problem {
    if family == 8 {
        return random_instance(seed);
    }
    let shapes = FAMILY_SHAPES[family];
    let shape = shapes[(seed % shapes.len() as u64) as usize];
    ProblemRef::parse(shape)
        .expect("valid shape")
        .build(1 + seed % 5)
        .expect("instance generates")
}

/// A random-parameter Choco-Q circuit for the instance (the production
/// circuit shape: basis load, diagonal cost evolution, serialized
/// commute-driver pass — per layer).
fn choco_circuit(problem: &Problem, seed: u64, layers: usize) -> Option<Circuit> {
    let driver = CommuteDriver::build(problem.constraints()).ok()?;
    let initial = driver.encode_state(problem.first_feasible()?);
    let ordered = driver.ordered_terms(initial);
    let mut rng = SplitMix64::new(seed ^ 0xC1AC);
    let params: Vec<f64> = (0..ChocoQSolver::n_params(layers, ordered.len()))
        .map(|_| rng.gen_range_f64(-1.5, 1.5))
        .collect();
    Some(ChocoQSolver::build_circuit(
        &driver,
        &Arc::new(problem.cost_poly()),
        &ordered,
        initial,
        layers,
        &params,
    ))
}

fn threaded(threads: usize) -> SimConfig {
    SimConfig {
        threads,
        parallel_threshold: 1, // force fan-out even on small states
        ..SimConfig::default()
    }
}

fn compact_threaded(threads: usize) -> SimConfig {
    threaded(threads).with_engine(EngineKind::Compact)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(36))]

    /// The three-way engine matrix on random Choco-Q circuits across
    /// every family: sparse vs compact (1/2/4 threads, replayed twice so
    /// the cached plan is exercised) must be BYTE-identical in amplitudes
    /// and expectations; both vs strided dense (1/2/4 threads) and the
    /// oracle to 1e-10; occupancy bounded by the feasible set (the
    /// commute theorem).
    #[test]
    fn sparse_and_compact_match_strided_and_oracle_on_all_families(
        family in 0usize..9,
        seed in any::<u64>(),
        layers in 1usize..3,
    ) {
        let problem = family_instance(family, seed);
        prop_assert!(problem.n_vars() <= 14);
        let Some(circuit) = choco_circuit(&problem, seed, layers) else {
            // No ternary kernel basis / infeasible: nothing to compare.
            return Ok(());
        };
        // Native-inequality families simulate the driver-encoded register
        // (decision bits + synthesized slack); every comparison below runs
        // at that width.
        let width = circuit.n_qubits();
        prop_assert!(width <= 14);
        let oracle = ScalarStateVector::run(&circuit);
        let sparse = SparseStateVector::run(&circuit);
        for (bits, &expect) in oracle.amplitudes().iter().enumerate() {
            let got = sparse.amplitude(bits as u64);
            prop_assert!(
                got.approx_eq(expect, 1e-10),
                "family={family} n={} bits={bits}: sparse {got} oracle {expect}",
                problem.n_vars()
            );
        }
        for threads in [1usize, 2, 4] {
            let dense = StateVector::run_with(&circuit, threaded(threads));
            for (bits, &expect) in dense.amplitudes().iter().enumerate() {
                prop_assert!(
                    sparse.amplitude(bits as u64).approx_eq(expect, 1e-10),
                    "family={family} threads={threads} bits={bits}"
                );
            }
        }
        // Compact plan replay at every thread count: byte-identity (==,
        // not approx) against the sparse engine, on the compiled run AND
        // on a cached replay.
        let cost = problem.cost_poly();
        let sparse_expectation = sparse.expectation_diag_poly(&cost);
        for threads in [1usize, 2, 4] {
            let mut ws = SimWorkspace::new(compact_threaded(threads));
            for replay in 0..2 {
                let state = ws.run(&circuit);
                for bits in 0..(1u64 << width) {
                    let (a, b) = (state.amplitude(bits), sparse.amplitude(bits));
                    prop_assert!(
                        a.re == b.re && a.im == b.im,
                        "family={family} threads={threads} replay={replay} bits={bits}: \
                         compact {a} sparse {b}"
                    );
                }
                let expectation = state.expectation_diag_poly(&cost);
                if state.is_compact() {
                    // Compact mirrors the sparse term sequence exactly.
                    prop_assert_eq!(
                        expectation,
                        sparse_expectation,
                        "family={} threads={} replay={}: expectation diverged",
                        family, threads, replay
                    );
                } else {
                    // Shapes whose |F| exceeds the occupancy cap fall
                    // back to dense, whose 2^n sum interleaves exact-zero
                    // terms: value-equal, compared with tolerance.
                    prop_assert!(
                        (expectation - sparse_expectation).abs()
                            <= 1e-12 * sparse_expectation.abs().max(1.0),
                        "family={family} threads={threads} replay={replay}: \
                         fallback expectation diverged"
                    );
                }
                prop_assert_eq!(state.occupancy(), sparse.occupancy());
            }
            prop_assert_eq!(ws.plan_compilations(), 1, "replay must hit the plan cache");
        }
        // Subspace confinement: neither feasible-subspace engine occupies
        // more entries than the problem has feasible assignments.
        let n_feasible = problem.feasible_solutions(1 << 15).len();
        prop_assert!(
            sparse.occupancy() <= n_feasible,
            "occupancy {} exceeds |F| = {n_feasible}",
            sparse.occupancy()
        );
    }

    /// One seed, one distribution: the sparse engine, the compact engine,
    /// and the dense engine at every thread count produce *identical*
    /// sample histograms, shot for shot.
    #[test]
    fn sample_streams_identical_across_engines_and_threads(
        family in 0usize..9,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let problem = family_instance(family, seed);
        prop_assert!(problem.n_vars() <= 14);
        let Some(circuit) = choco_circuit(&problem, seed, 1) else {
            return Ok(());
        };
        let sparse = SparseStateVector::run(&circuit);
        let reference = {
            let mut rng = StdRng::seed_from_u64(seed);
            sparse.sample(2_000, &mut rng)
        };
        for threads in [1usize, 2, 4] {
            let dense = StateVector::run_with(&circuit, threaded(threads));
            let mut rng = StdRng::seed_from_u64(seed);
            let counts = dense.sample(2_000, &mut rng);
            prop_assert!(
                counts == reference,
                "family={family} threads={threads}: sample stream diverged"
            );
            let mut ws = SimWorkspace::new(compact_threaded(threads));
            ws.run(&circuit);
            let mut rng = StdRng::seed_from_u64(seed);
            let counts = ws.sample(2_000, &mut rng);
            prop_assert!(
                counts == reference,
                "family={family} threads={threads}: compact sample stream diverged"
            );
        }
    }
}

/// A penalty-QAOA-style circuit: uniform superposition, diagonal cost,
/// transverse-field mixers — fills the register immediately.
fn penalty_style_circuit(n: usize, seed: u64) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut poly = choco_q::qsim::PhasePoly::new(n);
    for i in 0..n {
        poly.add_linear(i, rng.gen_range_f64(-2.0, 2.0));
    }
    let poly = Arc::new(poly);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..2 {
        c.diag(poly.clone(), rng.gen_range_f64(0.1, 1.0));
        for q in 0..n {
            c.rx(q, rng.gen_range_f64(0.1, 1.0));
        }
    }
    c
}

/// An HEA-style circuit: RY/CZ bricks (no structured gates at all).
fn hea_style_circuit(n: usize, seed: u64) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(n);
    for _ in 0..3 {
        for q in 0..n {
            c.ry(q, rng.gen_range_f64(-1.0, 1.0));
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1);
        }
    }
    c
}

/// A noise-trajectory-style circuit: a confined Choco-Q layer with random
/// Pauli errors injected after gates, plus stray Hadamards (readout-ish
/// basis churn) — the gate soup a stochastic noise channel produces.
fn noisy_trajectory_circuit(n: usize, seed: u64) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(n);
    c.load_bits(1);
    let u: Vec<i8> = (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
    c.ublock(choco_q::qsim::UBlock::from_u_with_angle(&u, 0.6));
    for q in 0..n {
        match rng.gen_range(0, 4) {
            0 => {
                c.push(choco_q::qsim::Gate::X(q));
            }
            1 => {
                c.push(choco_q::qsim::Gate::Y(q));
            }
            2 => {
                c.push(choco_q::qsim::Gate::Z(q));
            }
            _ => {
                c.h(q);
            }
        }
    }
    c
}

#[test]
fn subspace_breaking_circuits_trip_the_auto_fallback() {
    // Threshold 0.05: the mixer circuits fill the register outright, and
    // the noisy trajectory's stray-Hadamard churn reaches 16/256 = 6.25%
    // — all three must cross and densify.
    let config = SimConfig {
        density_threshold: 0.05,
        ..SimConfig::serial().with_engine(EngineKind::Auto)
    };
    for (label, circuit) in [
        ("penalty", penalty_style_circuit(8, 11)),
        ("hea", hea_style_circuit(8, 12)),
        ("noisy", noisy_trajectory_circuit(8, 13)),
    ] {
        let mut engine = SimEngine::new_with(circuit.n_qubits(), config);
        engine.apply_circuit(&circuit);
        assert!(
            !engine.is_sparse(),
            "{label}: occupancy {} of {} never crossed the threshold",
            engine.occupancy(),
            1 << circuit.n_qubits()
        );
        // Post-fallback state is still oracle-exact.
        let oracle = ScalarStateVector::run(&circuit);
        let fidelity = oracle.fidelity_against_engine(&engine);
        assert!(
            (fidelity - 1.0).abs() < 1e-10,
            "{label}: fidelity {fidelity}"
        );
        // ... and its sample stream matches a dense run's exactly.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let dense = StateVector::run_with(&circuit, SimConfig::serial());
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        assert_eq!(
            engine.sample(1_500, &mut ra),
            dense.sample(1_500, &mut rb),
            "{label}"
        );
    }
}

#[test]
fn compact_engine_falls_back_cleanly_on_subspace_breaking_circuits() {
    // The compact engine refuses to compile shapes whose structural
    // support crosses the occupancy threshold, and runs them through the
    // per-gate engines with the auto-style dense fallback instead —
    // oracle-exact, with dense-identical sample streams, and without
    // re-attempting compilation on later iterations.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    for (label, circuit) in [
        ("penalty", penalty_style_circuit(10, 11)),
        ("hea", hea_style_circuit(10, 12)),
        ("noisy", noisy_trajectory_circuit(10, 13)),
    ] {
        let mut ws = SimWorkspace::new(SimConfig::serial().with_engine(EngineKind::Compact));
        for replay in 0..2 {
            let state = ws.run(&circuit);
            assert!(
                !state.is_compact(),
                "{label} replay {replay}: register-filling shape stayed compact"
            );
            let oracle = ScalarStateVector::run(&circuit);
            let fidelity = oracle.fidelity_against_engine(state);
            assert!(
                (fidelity - 1.0).abs() < 1e-10,
                "{label} replay {replay}: fidelity {fidelity}"
            );
        }
        assert_eq!(
            ws.plan_compilations(),
            1,
            "{label}: the refusal must be remembered, not recompiled"
        );
        let dense = StateVector::run_with(&circuit, SimConfig::serial());
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        assert_eq!(
            ws.sample(1_500, &mut ra),
            dense.sample(1_500, &mut rb),
            "{label}: fallback sample stream diverged"
        );
    }
}

#[test]
fn forced_sparse_handles_subspace_breaking_circuits_exactly() {
    // EngineKind::Sparse never falls back — it must still be correct on a
    // register-filling circuit, merely slower.
    let circuit = penalty_style_circuit(7, 21);
    let config = SimConfig::serial().with_engine(EngineKind::Sparse);
    let engine = SimEngine::run_with(&circuit, config);
    assert!(engine.is_sparse());
    assert_eq!(engine.occupancy(), 1 << 7, "mixers fill the register");
    let oracle = ScalarStateVector::run(&circuit);
    assert!((oracle.fidelity_against_engine(&engine) - 1.0).abs() < 1e-10);
}

#[test]
fn support_profile_consistent_through_the_fallback() {
    // The fig09b metric on a circuit whose execution densifies mid-way:
    // the auto profile must equal the dense profile gate for gate.
    let circuit = penalty_style_circuit(6, 31);
    let auto = SimConfig::serial().with_engine(EngineKind::Auto);
    assert_eq!(
        support_profile_with(&circuit, 1e-9, auto),
        support_profile(&circuit, 1e-9),
        "post-fallback support counts diverged from the dense fig09b path"
    );
}

#[test]
fn noise_channel_sampling_ignores_engine_selection() {
    // Stochastic noise breaks subspace confinement by construction, so
    // the Monte-Carlo executor always runs dense — a sparse-configured
    // SimConfig must not change its histograms.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2);
    let noise = NoiseModel::new(0.02, 0.05, 0.01);
    let dense_cfg = SimConfig::serial();
    let sparse_cfg = SimConfig::serial().with_engine(EngineKind::Sparse);
    let mut ra = StdRng::seed_from_u64(7);
    let mut rb = StdRng::seed_from_u64(7);
    let a = noise.sample_noisy_with(dense_cfg, &c, 2_000, 10, &mut ra);
    let b = noise.sample_noisy_with(sparse_cfg, &c, 2_000, 10, &mut rb);
    assert_eq!(a, b);
}

#[test]
fn fig09b_support_numbers_pinned_on_small_gcp() {
    // Regression pin for the execute_support rework (it now counts
    // support through the engine's occupancy counter instead of
    // rebuilding a dense state): the published fig09b-style numbers for
    // GCP G-class shape 3x2x2 at seed 1 must not move, on any engine.
    let problem = ProblemRef::parse("gcp:3x2x2").unwrap().build(1).unwrap();
    let circuit = choco_circuit_for_support(&problem);
    let dense = support_profile(&circuit, 1e-9);
    // Pinned values: initial basis state, then the serialized driver
    // spreads amplitude; re-derived from the dense engine at the time of
    // the rework, asserted verbatim so future engine changes cannot
    // silently shift fig09b.
    assert_eq!(dense.first(), Some(&1), "profile starts at one basis state");
    assert_eq!(dense, PINNED_GCP_3X2X2_PROFILE, "fig09b numbers moved");
    for kind in [EngineKind::Sparse, EngineKind::Compact, EngineKind::Auto] {
        let config = SimConfig::serial().with_engine(kind);
        assert_eq!(support_profile_with(&circuit, 1e-9, config), dense);
    }
}

/// The exact circuit `execute_support` profiles (initial params, one
/// layer).
fn choco_circuit_for_support(problem: &Problem) -> Circuit {
    let driver = CommuteDriver::build(problem.constraints()).unwrap();
    let initial = problem.first_feasible().unwrap();
    let ordered = driver.ordered_terms(initial);
    let params = ChocoQSolver::initial_params(1, ordered.len());
    ChocoQSolver::build_circuit(
        &driver,
        &Arc::new(problem.cost_poly()),
        &ordered,
        initial,
        1,
        &params,
    )
}

/// See `fig09b_support_numbers_pinned_on_small_gcp`: four load-bits
/// gates and the diagonal keep one basis state, then the serialized
/// driver blocks spread the support.
const PINNED_GCP_3X2X2_PROFILE: &[usize] = &[1, 1, 1, 1, 1, 2, 2, 2];
