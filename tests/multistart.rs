//! Integration tests for the deterministic parallel multi-start
//! scheduler: every `(branch × restart)` variational loop is pre-seeded
//! from its own coordinates, so a solve must be **byte-identical at any
//! `restart_workers` count** — across all six problem families of the
//! evaluation, across engines, and end-to-end through the experiment
//! runner. Pinned after the restart-seed collision fix (the old
//! serially-consumed restart RNG could not support this guarantee at
//! all, and the old `b·restarts + r` seed arithmetic reused loop seeds
//! across adjacent branches).

use choco_q::prelude::*;
use choco_q::qsim::{SimConfig, SimWorkspace};
use choco_q::runner::{execute, ProblemRef};

/// A small summation-constrained instance from the problem builder — the
/// sixth family of the evaluation (the other five come from the suite
/// generators).
fn random_instance() -> Problem {
    Problem::builder(6)
        .maximize()
        .linear(0, 1.5)
        .linear(1, -2.0)
        .linear(2, 3.0)
        .linear(3, 0.5)
        .linear(4, -1.0)
        .linear(5, 2.5)
        .quadratic(0, 3, -1.2)
        .quadratic(2, 5, 0.8)
        .equality([(0, 1), (1, 1), (2, 1)], 1)
        .equality([(3, 1), (4, 1), (5, 1)], 2)
        .build()
        .expect("valid builder instance")
}

/// One small instance per family: FLP, GCP, KPP, exact cover, knapsack,
/// random builder.
fn family_problems() -> Vec<(&'static str, Problem)> {
    let mut problems: Vec<(&'static str, Problem)> = [
        "flp:2x2",
        "gcp:3x2x2",
        "kpp:4x3x2",
        "cover:4x6",
        "knapsack:4x6",
    ]
    .into_iter()
    .map(|shape| {
        let p = ProblemRef::parse(shape)
            .expect("valid shape")
            .build(1)
            .expect("instance generates");
        (shape, p)
    })
    .collect();
    problems.push(("random-builder", random_instance()));
    problems
}

fn sched_config() -> ChocoQConfig {
    ChocoQConfig {
        restarts: 3,
        shots: 1_500,
        max_iters: 12,
        transpiled_stats: false,
        ..ChocoQConfig::default()
    }
}

#[test]
fn solve_is_identical_across_restart_workers_on_all_six_families() {
    for (name, problem) in family_problems() {
        let serial = ChocoQSolver::new(sched_config())
            .solve(&problem)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for workers in [2usize, 4] {
            let parallel = ChocoQSolver::new(ChocoQConfig {
                restart_workers: workers,
                ..sched_config()
            })
            .solve(&problem)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(serial.counts, parallel.counts, "{name} workers={workers}");
            assert_eq!(
                serial.cost_history, parallel.cost_history,
                "{name} workers={workers}"
            );
            assert_eq!(
                serial.iterations, parallel.iterations,
                "{name} workers={workers}"
            );
            assert_eq!(serial.circuit, parallel.circuit, "{name} workers={workers}");
        }
    }
}

#[test]
fn parallel_solve_matches_serial_on_every_engine() {
    // Scheduler determinism composes with engine identity: 4 parallel
    // workers on the sparse/compact engines must reproduce the serial
    // dense solve bit for bit (worker workspaces share the caller's
    // compiled-plan cache on the compact path).
    use choco_q::qsim::EngineKind;
    let problem = ProblemRef::parse("gcp:3x2x2")
        .unwrap()
        .build(1)
        .expect("instance");
    let dense_serial = {
        let mut ws = SimWorkspace::new(SimConfig::serial());
        ChocoQSolver::new(sched_config())
            .solve_with_workspace(&problem, &mut ws)
            .expect("dense serial")
    };
    for engine in [EngineKind::Dense, EngineKind::Sparse, EngineKind::Compact] {
        let mut ws = SimWorkspace::new(SimConfig::serial().with_engine(engine));
        let parallel = ChocoQSolver::new(ChocoQConfig {
            restart_workers: 4,
            ..sched_config()
        })
        .solve_with_workspace(&problem, &mut ws)
        .unwrap_or_else(|e| panic!("{engine}: {e}"));
        assert_eq!(dense_serial.counts, parallel.counts, "{engine}");
        assert_eq!(dense_serial.cost_history, parallel.cost_history, "{engine}");
        assert_eq!(dense_serial.iterations, parallel.iterations, "{engine}");
        // The caller's workspace holds the winner's final state in both
        // modes — the runner reads the resolved engine from it.
        assert!(ws.state().is_some(), "{engine}: end-state contract");
    }
}

const RESTART_GRID: &str = r#"
name = "restart-workers"
description = "determinism grid for the multistart scheduler"

[grid]
problems = ["F1", "cover:4x6"]
solvers = ["choco-q"]
seeds = [1, 2]

[config]
shots = 1000
max_iters = 8
restarts = 3
transpiled_stats = false
"#;

#[test]
fn runner_reports_are_byte_identical_across_restart_workers() {
    let spec = ExperimentSpec::parse_str(RESTART_GRID).expect("spec");
    let run = |restart_workers: usize| {
        let report = execute(
            &spec,
            &RunOptions {
                restart_workers,
                ..RunOptions::default()
            },
        )
        .expect("grid runs");
        (report.to_json(), report.to_csv())
    };
    let (json1, csv1) = run(1);
    let (json2, csv2) = run(2);
    let (json4, csv4) = run(4);
    assert_eq!(json1, json2, "1 vs 2 restart workers");
    assert_eq!(json1, json4, "1 vs 4 restart workers");
    assert_eq!(csv1, csv2);
    assert_eq!(csv1, csv4);
}

#[test]
fn runner_optimizer_key_changes_the_solve_and_is_reported() {
    // The optimizer is a real knob (unlike the engine key): selecting
    // nelder-mead must produce a *valid* but generally different report,
    // and each record must carry the resolved optimizer label.
    let spec = ExperimentSpec::parse_str(RESTART_GRID).expect("spec");
    let with_optimizer = |optimizer| {
        execute(
            &spec,
            &RunOptions {
                optimizer,
                ..RunOptions::default()
            },
        )
        .expect("grid runs")
    };
    use choco_q::optim::OptimizerKind;
    let default_report = with_optimizer(None);
    let json = default_report.to_json();
    assert!(
        json.contains("\"optimizer\": \"cobyla\""),
        "default resolves to cobyla"
    );
    let nm_report = with_optimizer(Some(OptimizerKind::NelderMead));
    assert!(nm_report
        .to_json()
        .contains("\"optimizer\": \"nelder-mead\""));
    for record in &nm_report.records {
        assert_eq!(
            record.get("status"),
            Some(&choco_q::runner::Field::Str("ok".into())),
            "nelder-mead cells still solve"
        );
    }
    // CLI > spec precedence mirrors the engine key.
    let mut spec_nm = ExperimentSpec::parse_str(RESTART_GRID).expect("spec");
    spec_nm.optimizer = Some(OptimizerKind::NelderMead);
    let opts = RunOptions {
        optimizer: Some(OptimizerKind::Spsa),
        ..RunOptions::default()
    };
    assert_eq!(opts.effective_optimizer(&spec_nm), OptimizerKind::Spsa);
    assert_eq!(
        RunOptions::default().effective_optimizer(&spec_nm),
        OptimizerKind::NelderMead
    );
}
