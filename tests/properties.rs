//! Property-based tests (proptest) on the core invariants of the paper:
//! commutation, serialization feasibility, decomposition equivalence, the
//! classical substrates, and the benchmark-generator contracts (every
//! emitted instance is feasible and matches its declared family shape).

use choco_q::core::CommuteDriver;
use choco_q::mathkit::{ternary_kernel_basis, LinEq, LinSystem};
use choco_q::prelude::*;
use choco_q::problems::{cover_random, knapsack_random, KnapsackLayout};
use choco_q::qsim::{transpile, PhasePoly, TranspileOptions, UBlock};
use proptest::prelude::*;

/// A random small constraint system with ±1 coefficients (the shape that
/// FLP/GCP/KPP encodings produce).
fn arb_system() -> impl Strategy<Value = LinSystem> {
    (2usize..6, 1usize..3, any::<u64>()).prop_map(|(n_vars, n_eqs, seed)| {
        let mut rng = choco_q::mathkit::SplitMix64::new(seed);
        let mut sys = LinSystem::new(n_vars);
        for _ in 0..n_eqs {
            let mut terms = Vec::new();
            for v in 0..n_vars {
                match rng.gen_range(0, 3) {
                    0 => terms.push((v, 1i64)),
                    1 => terms.push((v, -1i64)),
                    _ => {}
                }
            }
            if terms.is_empty() {
                terms.push((0, 1));
            }
            let lo: i64 = terms.iter().map(|&(_, c)| c.min(0)).sum();
            let hi: i64 = terms.iter().map(|&(_, c)| c.max(0)).sum();
            let rhs = lo + (rng.gen_range(0, (hi - lo + 1) as u64) as i64);
            sys.push(LinEq::new(terms, rhs));
        }
        sys
    })
}

/// A random mixed integer linear system: ternary equality rows (as
/// [`arb_system`]) plus general positive-coefficient `≤` rows — the shape
/// the generalized driver synthesis must handle with internal slack
/// registers.
fn arb_mixed_system() -> impl Strategy<Value = LinSystem> {
    (2usize..5, 0usize..2, 1usize..3, any::<u64>()).prop_map(|(n_vars, n_eqs, n_ineqs, seed)| {
        let mut rng = choco_q::mathkit::SplitMix64::new(seed);
        let mut sys = LinSystem::new(n_vars);
        for _ in 0..n_eqs {
            let mut terms = Vec::new();
            for v in 0..n_vars {
                match rng.gen_range(0, 3) {
                    0 => terms.push((v, 1i64)),
                    1 => terms.push((v, -1i64)),
                    _ => {}
                }
            }
            if terms.is_empty() {
                terms.push((0, 1));
            }
            let lo: i64 = terms.iter().map(|&(_, c)| c.min(0)).sum();
            let hi: i64 = terms.iter().map(|&(_, c)| c.max(0)).sum();
            let rhs = lo + (rng.gen_range(0, (hi - lo + 1) as u64) as i64);
            sys.push(LinEq::new(terms, rhs));
        }
        for _ in 0..n_ineqs {
            let mut terms = Vec::new();
            for v in 0..n_vars {
                if rng.gen_range(0, 2) == 0 {
                    terms.push((v, rng.gen_range(1, 4) as i64));
                }
            }
            if terms.is_empty() {
                terms.push((0, 1));
            }
            let hi: i64 = terms.iter().map(|&(_, c)| c).sum();
            // rhs in [1, hi]: sometimes binding, sometimes (rhs = hi)
            // vacuous — both register-sizing paths get exercised.
            let rhs = 1 + rng.gen_range(0, hi as u64) as i64;
            sys.push_le(LinEq::new(terms, rhs));
        }
        sys
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. (4) generalized: over the *encoded* register (decision bits
    /// plus synthesized slack registers), every driver term commutes with
    /// every equality-constraint operator and with every extended-row
    /// operator `Σ aᵢxᵢ + s` — the algebraic fact that confines the
    /// evolution of native-inequality instances.
    #[test]
    fn generalized_driver_commutes_with_extended_rows(sys in arb_mixed_system()) {
        let Ok(driver) = CommuteDriver::build(&sys) else { return Ok(()); };
        if driver.encoded_qubits() > 7 { return Ok(()); }
        let encoded = driver.encoded_qubits();
        for term in driver.terms() {
            let hc = driver.term_matrix_encoded(term);
            for eq in sys.eqs() {
                let c_op = choco_q::core::constraint_operator_matrix(&eq.terms, encoded);
                prop_assert!(hc.commutator(&c_op).frobenius_norm() < 1e-10);
            }
            for reg in driver.registers() {
                let row_op = choco_q::core::extended_row_operator_matrix(reg, encoded);
                prop_assert!(hc.commutator(&row_op).frobenius_norm() < 1e-10);
            }
        }
    }

    /// Lemma 1 generalized through the simulator: a serialized pass of
    /// generalized (register-shifting) driver gates keeps every amplitude
    /// on the extended feasible manifold — the decision bits satisfy all
    /// rows (including `≤`), and each slack register holds exactly its
    /// row's residual.
    #[test]
    fn generalized_pass_preserves_feasibility(sys in arb_mixed_system(), beta in 0.05f64..1.5) {
        let Some(initial) = sys.first_binary_solution() else { return Ok(()); };
        let Ok(driver) = CommuteDriver::build(&sys) else { return Ok(()); };
        let encoded = driver.encoded_qubits();
        if encoded > 10 { return Ok(()); }
        let mut circuit = Circuit::new(encoded);
        circuit.load_bits(driver.encode_state(initial));
        for t in driver.ordered_terms(driver.encode_state(initial)) {
            circuit.push(driver.gate_of(&t, beta));
        }
        let state = StateVector::run(&circuit);
        for bits in 0..(1u64 << encoded) {
            if state.probability(bits) > 1e-12 {
                let x = bits & driver.decision_mask();
                prop_assert!(
                    sys.is_satisfied_bits(x),
                    "infeasible decision state {x:b} has probability {}",
                    state.probability(bits)
                );
                for reg in driver.registers() {
                    let mask = (1u64 << reg.bits) - 1;
                    let held = (bits >> reg.offset) & mask;
                    prop_assert_eq!(
                        held as i64, reg.slack_of(x),
                        "register for `{}` off-manifold at {bits:b}", reg.row
                    );
                }
            }
        }
    }

    /// Every enumerated kernel vector annihilates every constraint row.
    #[test]
    fn kernel_vectors_annihilate(sys in arb_system()) {
        for u in sys.enumerate_ternary_kernel(500) {
            for eq in sys.eqs() {
                let dot: i64 = eq.terms.iter().map(|&(v, c)| c * u[v] as i64).sum();
                prop_assert_eq!(dot, 0);
            }
        }
    }

    /// Kernel-basis vectors are independent and of the right count.
    #[test]
    fn kernel_basis_has_kernel_dimension(sys in arb_system()) {
        if let Ok(basis) = ternary_kernel_basis(&sys) {
            prop_assert_eq!(basis.vectors.len(), basis.kernel_dim);
            prop_assert_eq!(basis.kernel_dim, sys.n_vars() - sys.rank());
            let mut tracker = choco_q::mathkit::SpanTracker::new();
            for u in &basis.vectors {
                let ints: Vec<i64> = u.iter().map(|&x| x as i64).collect();
                prop_assert!(tracker.insert_ints(&ints), "dependent basis vector");
            }
        }
    }

    /// The Heisenberg foundation (Eq. (4)): every driver term commutes with
    /// every constraint operator.
    #[test]
    fn driver_commutes_with_constraints(sys in arb_system()) {
        if sys.n_vars() > 5 { return Ok(()); }
        if let Ok(driver) = CommuteDriver::build(&sys) {
            for t in driver.terms() {
                let hc = CommuteDriver::term_matrix(&t.u);
                for eq in sys.eqs() {
                    let c_op = choco_q::core::constraint_operator_matrix(&eq.terms, sys.n_vars());
                    prop_assert!(hc.commutator(&c_op).frobenius_norm() < 1e-10);
                }
            }
        }
    }

    /// Lemma 1 through the simulator: a serialized driver pass maps
    /// feasible basis states to states supported only on feasible points.
    #[test]
    fn serialized_pass_preserves_feasibility(sys in arb_system(), beta in 0.05f64..1.5) {
        let Some(initial) = sys.first_binary_solution() else { return Ok(()); };
        let Ok(driver) = CommuteDriver::build(&sys) else { return Ok(()); };
        let mut circuit = Circuit::new(sys.n_vars());
        circuit.load_bits(initial);
        for t in driver.ordered_terms(initial) {
            circuit.push(choco_q::qsim::Gate::UBlock(UBlock::from_u_with_angle(&t.u, beta)));
        }
        let state = StateVector::run(&circuit);
        for bits in 0..(1u64 << sys.n_vars()) {
            if state.probability(bits) > 1e-12 {
                prop_assert!(
                    sys.is_satisfied_bits(bits),
                    "infeasible state {bits:b} has probability {}",
                    state.probability(bits)
                );
            }
        }
    }

    /// Lemma 2 through the transpiler: lowering a UBlock never changes the
    /// state (up to 1e-9), for arbitrary u patterns and angles.
    #[test]
    fn lemma2_lowering_is_exact(
        pattern in 0u64..8,
        beta in -1.5f64..1.5,
        input in 0u64..8,
    ) {
        let u: Vec<i8> = (0..3)
            .map(|k| if (pattern >> k) & 1 == 1 { 1 } else { -1 })
            .collect();
        let mut c = Circuit::new(5);
        c.push(choco_q::qsim::Gate::UBlock(UBlock::from_u_with_angle(&u, beta)));
        let lowered = transpile(&c, &TranspileOptions::with_ancillas(vec![3, 4])).unwrap();
        let mut a = StateVector::from_bits(5, input);
        a.apply_circuit(&c);
        let mut b = StateVector::from_bits(5, input);
        b.apply_circuit(&lowered);
        prop_assert!((a.fidelity(&b) - 1.0).abs() < 1e-9);
    }

    /// The penalty expansion agrees with direct evaluation on every
    /// assignment (soft-constraint substrate).
    #[test]
    fn penalty_poly_is_exact(sys in arb_system(), lambda in 0.0f64..20.0) {
        let mut builder = Problem::builder(sys.n_vars()).minimize();
        for eq in sys.eqs() {
            builder = builder.equality(eq.terms.to_vec(), eq.rhs);
        }
        let problem = builder.build().unwrap();
        let poly = problem.penalty_poly(lambda);
        for bits in 0..(1u64 << sys.n_vars()) {
            let direct = problem.cost(bits)
                + lambda * sys.penalty_bits(bits) as f64;
            prop_assert!((poly.eval_bits(bits) - direct).abs() < 1e-9);
        }
    }

    /// Diagonal evolution is exactly a per-state phase: probabilities are
    /// untouched for any polynomial and angle.
    #[test]
    fn diagonal_evolution_preserves_probabilities(
        seed in any::<u64>(),
        gamma in -2.0f64..2.0,
    ) {
        let mut rng = choco_q::mathkit::SplitMix64::new(seed);
        let n = 4usize;
        let mut poly = PhasePoly::new(n);
        for i in 0..n {
            poly.add_linear(i, rng.gen_range_f64(-2.0, 2.0));
        }
        poly.add_quadratic(0, 2, rng.gen_range_f64(-2.0, 2.0));
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.h(q);
        }
        prep.cx(0, 1).cx(2, 3);
        let before = StateVector::run(&prep);
        let mut after = before.clone();
        after.apply_diag_poly(&poly, gamma);
        for bits in 0..(1u64 << n) {
            prop_assert!((before.probability(bits) - after.probability(bits)).abs() < 1e-12);
        }
    }

    /// Exact-cover generator contract: every emitted instance is feasible
    /// by construction, and its constraint matrix is exactly the declared
    /// family shape — one all-ones summation row per universe element,
    /// rhs 1, over one variable per subset.
    #[test]
    fn cover_instances_are_feasible_with_declared_shape(
        n_elements in 2usize..9,
        extra_subsets in 0usize..8,
        seed in any::<u64>(),
    ) {
        let n_subsets = (n_elements / 2).max(2) + extra_subsets;
        let problem = cover_random(n_elements, n_subsets, seed).expect("generate");
        prop_assert_eq!(problem.n_vars(), n_subsets);
        prop_assert_eq!(problem.constraints().len(), n_elements);
        for eq in problem.constraints().eqs() {
            prop_assert!(eq.is_summation_format(), "non-summation row: {eq}");
            prop_assert_eq!(eq.rhs, 1);
            prop_assert!(!eq.terms.is_empty(), "uncovered element");
        }
        let feasible = problem.first_feasible();
        prop_assert!(feasible.is_some(), "planted cover lost");
        // The feasible point is an exact cover: every element once.
        let bits = feasible.unwrap();
        for eq in problem.constraints().eqs() {
            let covered: i64 = eq.terms.iter().map(|&(v, c)| c * ((bits >> v) & 1) as i64).sum();
            prop_assert_eq!(covered, 1);
        }
    }

    /// Knapsack generator contract: one budget row whose coefficients are
    /// the item weights followed by slack powers of two, rhs = capacity,
    /// and every under-budget selection extends to a feasible assignment.
    #[test]
    fn knapsack_instances_are_feasible_with_declared_shape(
        n_items in 1usize..8,
        capacity in 2u64..14,
        seed in any::<u64>(),
        selection in any::<u64>(),
    ) {
        let problem = knapsack_random(n_items, capacity, seed).expect("generate");
        prop_assert_eq!(problem.constraints().len(), 1);
        let eq = &problem.constraints().eqs()[0];
        prop_assert_eq!(eq.rhs, capacity as i64);

        // Recover the layout from the constraint row itself.
        let slack_bits = (64 - capacity.leading_zeros()) as usize;
        prop_assert_eq!(problem.n_vars(), n_items + slack_bits);
        prop_assert_eq!(eq.terms.len(), problem.n_vars(), "dense budget row");
        let mut weights = vec![0u64; n_items];
        for &(var, coeff) in eq.terms.iter() {
            prop_assert!(coeff > 0);
            if var < n_items {
                prop_assert!((1..=5).contains(&coeff), "weight range");
                weights[var] = coeff as u64;
            } else {
                prop_assert_eq!(coeff, 1i64 << (var - n_items), "slack powers of two");
            }
        }

        let layout = KnapsackLayout { weights, capacity };
        let items = selection & ((1u64 << n_items) - 1);
        match layout.assignment(items) {
            Some(bits) => prop_assert!(problem.is_feasible(bits)),
            None => prop_assert!(layout.weight_of(items) > capacity),
        }
        prop_assert!(problem.first_feasible().is_some(), "x = 0 must extend");
    }

    /// Exact classical solver and branch-and-bound always agree.
    #[test]
    fn classical_solvers_agree(sys in arb_system(), seed in any::<u64>()) {
        let mut rng = choco_q::mathkit::SplitMix64::new(seed);
        let mut builder = Problem::builder(sys.n_vars()).minimize();
        for v in 0..sys.n_vars() {
            builder = builder.linear(v, rng.gen_range_f64(-4.0, 4.0));
        }
        for eq in sys.eqs() {
            builder = builder.equality(eq.terms.to_vec(), eq.rhs);
        }
        let problem = builder.build().unwrap();
        match (solve_exact(&problem), choco_q::model::BranchAndBound::new().solve(&problem)) {
            (Ok(exact), Ok((bits, value))) => {
                prop_assert!((value - exact.value).abs() < 1e-6);
                prop_assert!(problem.is_feasible(bits));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "solver disagreement: {a:?} vs {b:?}"),
        }
    }
}
