//! Integration tests for the batched experiment runner: spec parsing of
//! every checked-in experiment, worker-count determinism of the reports,
//! and the new problem families flowing through the grid.

use choco_q::prelude::*;
use choco_q::runner::{execute, Field, SolverKind};

/// A grid small enough for CI but wide enough to cross problem families,
/// solvers, and an error-producing cell (cyclic on the knapsack's
/// general-coefficient budget row).
const CROSS_FAMILY_SPEC: &str = r#"
name = "cross-family"
description = "integration grid over three families"

[grid]
problems = ["F1", "cover:4x6", "knapsack:4x6"]
solvers = ["choco-q", "cyclic"]
seeds = [1, 2]

[config]
shots = 1000
max_iters = 8
restarts = 1
transpiled_stats = false
"#;

#[test]
fn every_checked_in_spec_parses() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("experiments");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("experiments/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let spec = ExperimentSpec::load(path.to_str().expect("utf-8 path"))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!spec.name.is_empty(), "{}", path.display());
        assert!(!spec.description.is_empty(), "{}", path.display());
        // Every spec must expand (quick and full) without panicking, and
        // every referenced instance must actually generate.
        for quick in [false, true] {
            for cell in spec.expand_cells(quick) {
                cell.problem
                    .build(cell.instance_seed)
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            }
        }
        seen += 1;
    }
    assert!(seen >= 12, "expected the full spec set, found {seen}");
}

#[test]
fn reports_are_identical_across_worker_counts() {
    let spec = ExperimentSpec::parse_str(CROSS_FAMILY_SPEC).expect("spec");
    let run = |workers: usize| {
        let report = execute(
            &spec,
            &RunOptions {
                workers,
                ..RunOptions::default()
            },
        )
        .expect("grid runs");
        (report.to_json(), report.to_csv())
    };
    let (json1, csv1) = run(1);
    let (json2, csv2) = run(2);
    let (json4, csv4) = run(4);
    assert_eq!(json1, json2, "1-worker vs 2-worker JSON must be identical");
    assert_eq!(json1, json4, "1-worker vs 4-worker JSON must be identical");
    assert_eq!(csv1, csv2);
    assert_eq!(csv1, csv4);
}

#[test]
fn cross_family_grid_exercises_hard_constraints_and_errors() {
    let spec = ExperimentSpec::parse_str(CROSS_FAMILY_SPEC).expect("spec");
    let report = execute(&spec, &RunOptions::default()).expect("grid runs");
    // 3 problems × 2 seeds × 2 solvers.
    assert_eq!(report.records.len(), 12);

    let str_of = |r: &choco_q::runner::Record, key: &str| -> String {
        match r.get(key) {
            Some(Field::Str(s)) => s.clone(),
            other => panic!("{key}: {other:?}"),
        }
    };
    for record in &report.records {
        let solver = str_of(record, "solver");
        let problem = str_of(record, "problem");
        let status = str_of(record, "status");
        match (solver.as_str(), problem.as_str()) {
            // The knapsack budget row is not summation format: cyclic
            // must reject it as an error record, not a panic.
            ("cyclic", "knapsack:4x6") => assert_eq!(status, "error", "{problem}"),
            // Choco-Q encodes every family and never leaves the feasible
            // subspace.
            ("choco-q", _) => {
                assert_eq!(status, "ok", "{problem}");
                match record.get("in_constraints_rate") {
                    Some(Field::Float(rate)) => {
                        assert!((rate - 1.0).abs() < 1e-9, "{problem}: {rate}")
                    }
                    other => panic!("{problem}: {other:?}"),
                }
            }
            _ => {}
        }
    }
    // The JSON round-trips the error count.
    assert!(report.to_json().contains("\"errors\": 2"));
}

#[test]
fn csv_has_one_row_per_cell_and_a_single_header() {
    let spec = ExperimentSpec::parse_str(CROSS_FAMILY_SPEC).expect("spec");
    let report = execute(&spec, &RunOptions::default()).expect("grid runs");
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + report.records.len());
    assert!(lines[0].starts_with("index,problem,instance,"));
    let columns = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
    }
}

#[test]
fn cell_seeds_reproduce_in_isolation() {
    // Running a sub-grid containing just one coordinate of the big grid
    // must reproduce the big grid's record for that coordinate.
    let full = ExperimentSpec::parse_str(CROSS_FAMILY_SPEC).expect("spec");
    let narrow = ExperimentSpec::parse_str(
        r#"
name = "cross-family"
[grid]
problems = ["cover:4x6"]
solvers = ["choco-q"]
seeds = [2]
[config]
shots = 1000
max_iters = 8
restarts = 1
transpiled_stats = false
"#,
    )
    .expect("spec");
    let full_report = execute(&full, &RunOptions::default()).expect("full");
    let narrow_report = execute(&narrow, &RunOptions::default()).expect("narrow");
    let target = full_report
        .records
        .iter()
        .find(|r| {
            r.get("problem") == Some(&Field::Str("cover:4x6".into()))
                && r.get("solver") == Some(&Field::Str("choco-q".into()))
                && r.get("instance_seed") == Some(&Field::UInt(2))
        })
        .expect("cell present");
    let isolated = &narrow_report.records[0];
    for key in ["cell_seed", "success_rate", "arg", "iterations"] {
        assert_eq!(target.get(key), isolated.get(key), "{key} diverged");
    }
}

#[test]
fn support_reports_identical_across_engines() {
    // The fig09b harness now counts support through the engine's
    // occupancy counter; selecting the sparse engine (as
    // experiments/scaling_sparse.toml does) must not move a single byte
    // of the report on sizes the dense engine can still check.
    let base = r#"
name = "support-engines"
description = "engine-identity regression for the support harness"
kind = "support"
[grid]
problems = ["gcp:3x2x2", "F1"]
"#;
    let spec = ExperimentSpec::parse_str(base).expect("spec");
    let run = |engine| {
        let opts = RunOptions {
            engine: Some(engine),
            ..RunOptions::default()
        };
        execute(&spec, &opts).expect("support runs").to_json()
    };
    use choco_q::qsim::EngineKind;
    let dense = run(EngineKind::Dense);
    assert_eq!(dense, run(EngineKind::Sparse));
    assert_eq!(dense, run(EngineKind::Compact));
    assert_eq!(dense, run(EngineKind::Auto));
    // And the spec-level engine key engages without a CLI override.
    let sparse_spec =
        ExperimentSpec::parse_str(&format!("{base}engine = \"sparse\"")).expect("spec");
    let from_spec = execute(&sparse_spec, &RunOptions::default())
        .expect("support runs")
        .to_json();
    assert_eq!(dense, from_spec);
}

#[test]
fn runner_prelude_types_are_reachable() {
    // The umbrella prelude re-exports the runner surface.
    let spec = ExperimentSpec::parse_str(
        "name = \"p\"\n[grid]\nproblems = [\"F1\"]\nsolvers = [\"hea\"]\n\
         [config]\nshots = 200\nmax_iters = 3",
    )
    .expect("spec");
    let report: RunReport = execute(&spec, &RunOptions::default()).expect("runs");
    assert_eq!(report.records.len(), 1);
    assert_eq!(SolverKind::Hea.label(), "hea");
}
