//! Cross-crate integration tests: the paper's headline claims, checked
//! end-to-end through the public API.

use choco_q::prelude::*;

/// The paper's running example (Fig. 2a), 0-indexed.
fn paper_problem() -> Problem {
    Problem::builder(4)
        .maximize()
        .linear(0, 1.0)
        .linear(1, 2.0)
        .linear(2, 3.0)
        .linear(3, 1.0)
        .equality([(0, 1), (2, -1)], 0)
        .equality([(0, 1), (1, 1), (3, 1)], 1)
        .build()
        .expect("valid problem")
}

#[test]
fn choco_q_beats_baselines_on_the_paper_example() {
    // Table I's shape: Choco-Q gets 100% in-constraints and a much higher
    // success rate than every baseline.
    let problem = paper_problem();
    let optimum = solve_exact(&problem).expect("solvable");

    let choco = ChocoQSolver::new(ChocoQConfig::default())
        .solve(&problem)
        .expect("choco solves");
    let mc = choco.metrics_with(&problem, &optimum);
    assert!((mc.in_constraints_rate - 1.0).abs() < 1e-12);
    assert!(mc.success_rate > 0.5, "choco success = {}", mc.success_rate);

    let penalty = PenaltyQaoaSolver::new(QaoaConfig::default())
        .solve(&problem)
        .expect("penalty solves");
    let mp = penalty.metrics_with(&problem, &optimum);
    assert!(
        mc.success_rate > mp.success_rate,
        "choco {} vs penalty {}",
        mc.success_rate,
        mp.success_rate
    );
    assert!(mp.in_constraints_rate < 1.0 - 1e-9, "penalty leaks mass");
}

#[test]
fn all_small_suite_classes_keep_hard_constraints() {
    // The 100%-in-constraints column of Table II on F1/G1/K1.
    for case in BenchmarkSuite::small().iter() {
        let optimum = solve_exact(&case.problem).expect(case.id);
        let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
            .solve(&case.problem)
            .expect(case.id);
        let m = outcome.metrics_with(&case.problem, &optimum);
        assert!(
            (m.in_constraints_rate - 1.0).abs() < 1e-12,
            "{}: in-constraints = {}",
            case.id,
            m.in_constraints_rate
        );
        assert_eq!(outcome.counts.shots(), 2_000);
    }
}

#[test]
fn structured_and_transpiled_paths_agree() {
    // Lemma 1 + Lemma 2 end-to-end: the structured simulation and the
    // fully lowered (basic-gate, 2-ancilla) circuit produce the same
    // distribution.
    use choco_q::core::CommuteDriver;
    use choco_q::qsim::{transpile, TranspileOptions};
    use std::sync::Arc;

    let problem = paper_problem();
    let driver = CommuteDriver::build(problem.constraints()).expect("driver");
    let initial = problem.first_feasible().expect("feasible");
    let ordered = driver.ordered_terms(initial);
    let poly = Arc::new(problem.cost_poly());
    let params = ChocoQSolver::initial_params(1, ordered.len());
    let circuit = ChocoQSolver::build_circuit(&driver, &poly, &ordered, initial, 1, &params);

    let exact = StateVector::run(&circuit);

    let n = problem.n_vars();
    let mut wide = Circuit::new(n + 2);
    for g in circuit.gates() {
        wide.push(g.clone());
    }
    let lowered =
        transpile(&wide, &TranspileOptions::with_ancillas(vec![n, n + 1])).expect("transpile");
    let gate_level = StateVector::run(&lowered);

    for bits in 0..(1u64 << n) {
        let p_exact = exact.probability(bits);
        // Ancillas end in |0⟩, so the wide state's amplitude sits at the
        // same index.
        let p_gate = gate_level.probability(bits);
        assert!(
            (p_exact - p_gate).abs() < 1e-9,
            "P({bits:04b}): structured {p_exact} vs transpiled {p_gate}"
        );
    }
}

#[test]
fn variable_elimination_outcomes_satisfy_original_constraints() {
    // §IV-C's correctness claim, through the full solver.
    let problem = paper_problem();
    for eliminate in [1usize, 2] {
        let outcome = ChocoQSolver::new(ChocoQConfig {
            eliminate,
            ..ChocoQConfig::fast_test()
        })
        .solve(&problem)
        .expect("solve");
        for (bits, _) in outcome.counts.iter() {
            assert!(
                problem.is_feasible(bits),
                "eliminate={eliminate}: outcome {bits:04b} violates constraints"
            );
        }
    }
}

#[test]
fn cyclic_baseline_is_exact_only_on_summation_constraints() {
    // §III's motivation: cyclic handles x0+x1+x2 = 1 exactly but cannot
    // encode x0 − x2 = 0.
    let summation = Problem::builder(3)
        .maximize()
        .linear(1, 1.0)
        .equality([(0, 1), (1, 1), (2, 1)], 1)
        .build()
        .unwrap();
    let outcome = CyclicQaoaSolver::new(QaoaConfig::fast_test())
        .solve(&summation)
        .expect("cyclic on summation");
    let m = outcome.metrics(&summation).expect("metrics");
    assert!((m.in_constraints_rate - 1.0).abs() < 1e-9);

    let mixed = Problem::builder(2)
        .equality([(0, 1), (1, -1)], 0)
        .build()
        .unwrap();
    assert!(CyclicQaoaSolver::new(QaoaConfig::fast_test())
        .solve(&mixed)
        .is_err());
}

#[test]
fn device_noise_degrades_but_preserves_ordering() {
    // Fig. 10's shape: noisy success ≤ noiseless success, and the solver
    // still returns full shot counts.
    let problem = choco_q::problems::instance("K1", 1);
    let optimum = solve_exact(&problem).expect("solvable");

    let clean = ChocoQSolver::new(ChocoQConfig::fast_test())
        .solve(&problem)
        .expect("clean");
    let mc = clean.metrics_with(&problem, &optimum);

    let fez = Device::Fez.model();
    let noisy = ChocoQSolver::new(ChocoQConfig {
        noise: Some(fez.noise()),
        noise_trajectories: 10,
        ..ChocoQConfig::fast_test()
    })
    .solve(&problem)
    .expect("noisy");
    let mn = noisy.metrics_with(&problem, &optimum);

    assert!(mn.in_constraints_rate < mc.in_constraints_rate + 1e-9);
    assert!(mn.success_rate <= mc.success_rate + 0.05);
    assert_eq!(noisy.counts.shots(), clean.counts.shots());
}

#[test]
fn latency_model_favors_fewer_iterations() {
    // Fig. 11's mechanism: with equal circuits, latency scales with the
    // iteration count.
    let problem = paper_problem();
    let outcome = ChocoQSolver::new(ChocoQConfig::default())
        .solve(&problem)
        .expect("solve");
    let fez = Device::Fez.model();
    let est = LatencyModel::default().estimate_from_outcome(&fez, &outcome, 10_000);
    assert!(est.total() > std::time::Duration::ZERO);
    let mut fewer = outcome.clone();
    fewer.iterations /= 2;
    let est_fewer = LatencyModel::default().estimate_from_outcome(&fez, &fewer, 10_000);
    assert!(est_fewer.quantum < est.quantum);
}

#[test]
fn branch_and_bound_agrees_with_quantum_ground_truth() {
    // The classical substrate agrees with itself across the stack.
    use choco_q::model::BranchAndBound;
    for id in ["F1", "K1", "G1"] {
        let problem = choco_q::problems::instance(id, 1);
        let optimum = solve_exact(&problem).expect(id);
        let (bits, value) = BranchAndBound::new().solve(&problem).expect(id);
        assert!((value - optimum.value).abs() < 1e-9, "{id}");
        assert!(problem.is_feasible(bits), "{id}");
    }
}
