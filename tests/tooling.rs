//! Integration tests for the user-facing tooling: the LP-style parser, the
//! extension solvers (annealing, Grover adaptive search), and the circuit
//! renderer.

use choco_q::prelude::*;
use choco_q::solvers::{AnnealingConfig, AnnealingSolver, GroverConfig, GroverSolver};

const PAPER_TEXT: &str = "\
# the paper's running example (Fig. 2a)
maximize x0 + 2 x1 + 3 x2 + x3
s.t. x0 - x2 = 0
s.t. x0 + x1 + x3 = 1
";

#[test]
fn parsed_problem_solves_like_the_built_one() {
    let parsed = choco_q::model::parse_problem(PAPER_TEXT).expect("parse");
    let optimum = solve_exact(&parsed).expect("exact");
    assert_eq!(optimum.value, 4.0);

    let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
        .solve(&parsed)
        .expect("solve");
    let m = outcome.metrics_with(&parsed, &optimum);
    assert!((m.in_constraints_rate - 1.0).abs() < 1e-12);
    assert!(m.success_rate > 0.3);
}

#[test]
fn annealing_sits_between_penalty_and_choco() {
    // The related-work shape (§VI-A): annealing beats nothing-special
    // penalty QAOA on this instance but cannot make constraints hard.
    let problem = choco_q::model::parse_problem(PAPER_TEXT).expect("parse");
    let optimum = solve_exact(&problem).expect("exact");
    let anneal = AnnealingSolver::new(AnnealingConfig::default())
        .solve(&problem)
        .expect("anneal");
    let m = anneal.metrics_with(&problem, &optimum);
    assert!(
        m.success_rate > 0.1,
        "annealing success = {}",
        m.success_rate
    );
    assert!(
        m.in_constraints_rate < 1.0,
        "soft constraints cannot be exact"
    );
    assert_eq!(anneal.iterations, 0, "no classical loop");
}

#[test]
fn grover_adaptive_search_finds_optimum_with_many_oracle_calls() {
    let problem = choco_q::model::parse_problem(PAPER_TEXT).expect("parse");
    let optimum = solve_exact(&problem).expect("exact");
    let (outcome, stats) = GroverSolver::new(GroverConfig::default())
        .solve_with_stats(&problem)
        .expect("grover");
    let m = outcome.metrics_with(&problem, &optimum);
    assert!(m.success_rate > 0.2, "grover success = {}", m.success_rate);
    assert!(stats.oracle_calls > 0);
    // §VI-A: the selection circuit is undeployable — no transpiled stats.
    assert!(outcome.circuit.transpiled_depth.is_none());
}

#[test]
fn draw_renders_a_choco_circuit() {
    use choco_q::core::CommuteDriver;
    use std::sync::Arc;

    let problem = choco_q::model::parse_problem(PAPER_TEXT).expect("parse");
    let driver = CommuteDriver::build(problem.constraints()).expect("driver");
    let initial = problem.first_feasible().expect("feasible");
    let ordered = driver.ordered_terms(initial);
    let poly = Arc::new(problem.cost_poly());
    let params = ChocoQSolver::initial_params(1, ordered.len());
    let circuit = ChocoQSolver::build_circuit(&driver, &poly, &ordered, initial, 1, &params);
    let art = choco_q::qsim::draw(&circuit, 40);
    assert!(art.contains("q0:"));
    assert!(
        art.contains('◆') || art.contains('◇'),
        "UBlock symbols:\n{art}"
    );
    assert_eq!(art.lines().count(), problem.n_vars());
}
