//! Differential tests for the batched multi-angle plan replay.
//!
//! A batched replay evaluates K candidate angle sets of one circuit
//! shape in a single pass over the cached gate plan
//! ([`SimWorkspace::run_batch`]). The contract it must keep — proved here
//! across all six problem families, register widths 4..=14, batch widths
//! K ∈ {1, 2, 3, 8, 17} (non-powers of two and K > |F| included), and
//! 1/2/4 worker threads — is **bit-identity**: every lane's amplitudes,
//! expectations, and deterministic sample histograms equal those of a
//! serial compact replay of that lane's circuit, byte for byte. The
//! second half locks the resource story: one plan compilation across
//! serial runs × batches × workers sharing a cache, and zero SoA
//! allocations after warmup.

use choco_q::core::{ChocoQSolver, CommuteDriver};
use choco_q::mathkit::SplitMix64;
use choco_q::model::Problem;
use choco_q::qsim::{Circuit, EngineKind, PlanCache, SimConfig, SimWorkspace};
use choco_q::runner::ProblemRef;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The family shapes of `tests/engines.rs`, kept in 4..=14 qubits.
const FAMILY_SHAPES: [&[&str]; 5] = [
    &["flp:2x1", "flp:2x2"],
    &["gcp:2x1x2", "gcp:3x2x2", "gcp:3x3x2"],
    &["kpp:4x3x2", "kpp:4x4x2", "kpp:6x5x2"],
    &["cover:4x6", "cover:5x8", "cover:6x12"],
    &["knapsack:4x6", "knapsack:5x8", "knapsack:6x10"],
];

/// A random summation-constrained builder instance (family index 5).
fn random_instance(seed: u64) -> Problem {
    let mut rng = SplitMix64::new(seed ^ 0xFEED);
    let n = 4 + (rng.gen_range(0, 11) as usize); // 4..=14
    let mut b = Problem::builder(n);
    for i in 0..n {
        b = b.linear(i, rng.gen_range_f64(-3.0, 3.0));
    }
    let half = n / 2;
    let k1 = 1 + rng.gen_range(0, half as u64 - 1) as i64;
    b = b.equality((0..half).map(|i| (i, 1i64)), k1.min(half as i64));
    b.build().expect("valid random instance")
}

fn family_instance(family: usize, seed: u64) -> Problem {
    if family == 5 {
        return random_instance(seed);
    }
    let shapes = FAMILY_SHAPES[family];
    let shape = shapes[(seed % shapes.len() as u64) as usize];
    ProblemRef::parse(shape)
        .expect("valid shape")
        .build(1 + seed % 5)
        .expect("instance generates")
}

/// K same-shape Choco-Q circuits differing only in their angle sets —
/// exactly what an optimizer's simplex batch looks like.
fn candidate_circuits(problem: &Problem, seed: u64, k: usize) -> Option<Vec<Circuit>> {
    let driver = CommuteDriver::build(problem.constraints()).ok()?;
    let initial = problem.first_feasible()?;
    let ordered = driver.ordered_terms(initial);
    let poly = Arc::new(problem.cost_poly());
    let circuits = (0..k)
        .map(|lane| {
            let mut rng = SplitMix64::new(seed ^ 0xC1AC ^ (lane as u64) << 32);
            let params: Vec<f64> = (0..ChocoQSolver::n_params(1, ordered.len()))
                .map(|_| rng.gen_range_f64(-1.5, 1.5))
                .collect();
            ChocoQSolver::build_circuit(&driver, &poly, &ordered, initial, 1, &params)
        })
        .collect();
    Some(circuits)
}

fn compact_threaded(threads: usize) -> SimConfig {
    SimConfig {
        threads,
        parallel_threshold: 1, // force fan-out even on small states
        ..SimConfig::default()
    }
    .with_engine(EngineKind::Compact)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(36))]

    /// The batched-vs-serial differential matrix: each lane of a K-wide
    /// replay is byte-identical (==, not approx) to its own serial
    /// compact run — amplitudes, expectations, and 2000-shot sample
    /// histograms — at every batch width and worker count.
    #[test]
    fn batched_lanes_match_serial_replays_bitwise(
        family in 0usize..6,
        seed in any::<u64>(),
        k_idx in 0usize..5,
    ) {
        let k = [1usize, 2, 3, 8, 17][k_idx];
        let problem = family_instance(family, seed);
        prop_assert!(problem.n_vars() <= 14);
        let Some(circuits) = candidate_circuits(&problem, seed, k) else {
            return Ok(());
        };
        let cost = problem.cost_poly();

        // Serial references, one compact run per lane.
        let mut serial_ws = SimWorkspace::new(compact_threaded(1));
        let mut reference = Vec::with_capacity(k);
        for circuit in &circuits {
            let state = serial_ws.run(circuit);
            if !state.is_compact() {
                // Shape fell back (|F| over the cap): batching declines
                // it too — checked below, nothing lane-wise to compare.
                prop_assert!(
                    SimWorkspace::new(compact_threaded(1)).run_batch(&circuits).is_none(),
                    "family={family}: batch accepted a shape serial replay refused"
                );
                return Ok(());
            }
            let amps: Vec<_> = (0..(1u64 << problem.n_vars()))
                .map(|bits| state.amplitude(bits))
                .collect();
            let expectation = state.expectation_diag_poly(&cost);
            let mut rng = StdRng::seed_from_u64(seed);
            let histogram = serial_ws.sample(2_000, &mut rng);
            reference.push((amps, expectation, histogram));
        }

        for threads in [1usize, 2, 4] {
            let mut ws = SimWorkspace::new(compact_threaded(threads));
            let batch = ws.run_batch(&circuits).expect("compilable batch");
            prop_assert_eq!(batch.lanes(), k);
            for (lane, (amps, expectation, histogram)) in reference.iter().enumerate() {
                for (bits, expect) in amps.iter().enumerate() {
                    let got = batch.amplitude(lane, bits as u64);
                    prop_assert!(
                        got.re == expect.re && got.im == expect.im,
                        "family={family} threads={threads} K={k} lane={lane} \
                         bits={bits}: batched {got} serial {expect}"
                    );
                }
                prop_assert_eq!(
                    batch.expectation_diag_poly(lane, &cost),
                    *expectation,
                    "family={} threads={} K={} lane={}: expectation diverged",
                    family, threads, k, lane
                );
                let mut rng = StdRng::seed_from_u64(seed);
                prop_assert!(
                    batch.sample(lane, 2_000, &mut rng) == *histogram,
                    "family={family} threads={threads} K={k} lane={lane}: \
                     sample histogram diverged"
                );
            }
            prop_assert_eq!(ws.plan_compilations(), 1, "one compile per workspace");
        }
    }
}

#[test]
fn batch_wider_than_the_feasible_set_is_exact() {
    // K = 17 lanes on a tiny instance whose |F| is far smaller than K:
    // the rank-major SoA layout must not care which side is wider.
    let problem = family_instance(0, 0); // flp:2x1 — a handful of feasible states
    let circuits = candidate_circuits(&problem, 7, 17).expect("circuits build");
    let mut ws = SimWorkspace::new(compact_threaded(1));
    let batch = ws.run_batch(&circuits).expect("compilable batch");
    assert!(
        batch.lanes() > batch.basis().len(),
        "want K = {} > |F| = {} for this edge case",
        batch.lanes(),
        batch.basis().len()
    );
    let mut serial = SimWorkspace::new(compact_threaded(1));
    for (lane, circuit) in circuits.iter().enumerate() {
        let state = serial.run(circuit);
        for bits in 0..(1u64 << problem.n_vars()) {
            let (a, b) = (batch.amplitude(lane, bits), state.amplitude(bits));
            assert!(a.re == b.re && a.im == b.im, "lane={lane} bits={bits}");
        }
    }
}

#[test]
fn shared_cache_compiles_once_across_workers_and_batches() {
    // The PR-5 compile-once guarantee extended to batching: scoped
    // workers sharing one `Arc<PlanCache>`, each interleaving batched and
    // serial replays of the same shape, still compile it exactly once.
    let problem = family_instance(1, 3);
    let n = problem.n_vars();
    let circuits = candidate_circuits(&problem, 11, 4).expect("circuits build");
    let shared = Arc::new(PlanCache::new());
    std::thread::scope(|scope| {
        for w in 0..4 {
            let shared = Arc::clone(&shared);
            let circuits = &circuits;
            scope.spawn(move || {
                let mut ws = SimWorkspace::with_plan_cache(compact_threaded(1), shared);
                for round in 0..3 {
                    // Worker w cross-checks lane w % K against a serial
                    // run through the same shared cache.
                    let lane = w % circuits.len();
                    let probes: Vec<_> = {
                        let batch = ws.run_batch(circuits).expect("compilable batch");
                        (0..(1u64 << n))
                            .map(|bits| batch.amplitude(lane, bits))
                            .collect()
                    };
                    let state = ws.run(&circuits[lane]);
                    for (bits, probe) in probes.iter().enumerate() {
                        let serial = state.amplitude(bits as u64);
                        assert_eq!(probe.re, serial.re, "worker={w} round={round} bits={bits}");
                        assert_eq!(probe.im, serial.im, "worker={w} round={round} bits={bits}");
                    }
                }
            });
        }
    });
    assert_eq!(
        shared.compilations(),
        1,
        "4 workers × 3 rounds × (batched + serial) must share one compile"
    );
}

#[test]
fn batched_iterations_are_zero_alloc_after_warmup() {
    // The batched analog of the serial engine's zero-alloc contract:
    // after the first replay of a (shape, K), iterating never grows the
    // SoA buffer — and a *narrower* batch reuses the wide allocation.
    let problem = family_instance(2, 5);
    let circuits = candidate_circuits(&problem, 13, 8).expect("circuits build");
    let mut ws = SimWorkspace::new(compact_threaded(1));
    for _ in 0..10 {
        ws.run_batch(&circuits).expect("compilable batch");
    }
    assert_eq!(ws.batch_reallocations(), 1, "one warmup allocation");
    for _ in 0..5 {
        ws.run_batch(&circuits[..3]).expect("narrower batch");
    }
    assert_eq!(ws.batch_reallocations(), 1, "narrower K reuses the buffer");
    assert_eq!(ws.plan_compilations(), 1, "iteration never recompiles");
    // The serial engine was never disturbed by any of it.
    assert_eq!(ws.reallocations(), 0, "serial path untouched");
}
