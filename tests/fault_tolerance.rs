//! Fault-tolerance integration tests: kill/resume determinism of the
//! checkpoint journal across engines and worker counts, panic isolation,
//! deterministic fault injection, bounded retries, and cooperative
//! per-cell timeouts.

use choco_q::prelude::*;
use choco_q::qsim::EngineKind;
use choco_q::runner::serve::{serve, ServeOptions};
use choco_q::runner::{execute, FaultPlan, Field, RunKind};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Four fast cells (2 solvers × 2 seeds) — enough to kill mid-run at
/// every prefix without making the matrix slow.
const SPEC: &str = r#"
name = "ft"
description = "fault-tolerance grid"

[grid]
problems = ["F1"]
solvers = ["choco-q", "hea"]
seeds = [1, 2]

[config]
shots = 300
max_iters = 4
restarts = 1
transpiled_stats = false
"#;

fn spec() -> ExperimentSpec {
    ExperimentSpec::parse_str(SPEC).expect("spec")
}

/// A unique scratch path per test (tests run concurrently in one
/// process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("choco_ft_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn opts() -> RunOptions {
    RunOptions {
        workers: 1,
        ..RunOptions::default()
    }
}

fn status_of(report: &RunReport, i: usize) -> &str {
    match report.records[i].get("status") {
        Some(Field::Str(s)) => s,
        other => panic!("cell {i} has no status: {other:?}"),
    }
}

fn error_kind_of(report: &RunReport, i: usize) -> Option<&str> {
    match report.records[i].get("error_kind") {
        Some(Field::Str(s)) => Some(s),
        _ => None,
    }
}

/// The tentpole acceptance test: kill the run after *every* cell prefix,
/// resume at varying worker counts, and require the final JSON and CSV
/// to be byte-identical to an uninterrupted run — per engine, since the
/// journal header binds the engine selection.
#[test]
fn killed_runs_resume_byte_identically_at_any_prefix() {
    let dir = scratch("resume");
    let spec = spec();
    for engine in [EngineKind::Dense, EngineKind::Sparse, EngineKind::Compact] {
        let engine_opts = |workers: usize| RunOptions {
            workers,
            engine: Some(engine),
            ..RunOptions::default()
        };
        let clean = execute(&spec, &engine_opts(1)).expect("clean run");
        let (clean_json, clean_csv) = (clean.to_json(), clean.to_csv());

        // One full checkpointed single-worker run gives a journal whose
        // cell lines are in deterministic order — its prefixes are
        // exactly the states a killed run can leave behind.
        let full_path = dir.join(format!("{}_full.jsonl", engine.label()));
        let full_opts = RunOptions {
            checkpoint: Some(full_path.to_string_lossy().into_owned()),
            ..engine_opts(1)
        };
        let full = execute(&spec, &full_opts).expect("checkpointed run");
        assert_eq!(
            full.to_json(),
            clean_json,
            "checkpointing must not change the report"
        );
        let journal = std::fs::read_to_string(&full_path).expect("journal");
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 1 + spec.expand_cells(false).len());

        for prefix in 0..=(lines.len() - 1) {
            let path = dir.join(format!("{}_k{prefix}.jsonl", engine.label()));
            let truncated: String = lines[..=prefix].iter().flat_map(|l| [*l, "\n"]).collect();
            std::fs::write(&path, truncated).expect("truncated journal");
            let workers = [1, 2, 4][prefix % 3];
            let resume_opts = RunOptions {
                checkpoint: Some(path.to_string_lossy().into_owned()),
                resume: true,
                ..engine_opts(workers)
            };
            let resumed = execute(&spec, &resume_opts).expect("resume");
            assert_eq!(
                resumed.to_json(),
                clean_json,
                "{} engine, kill after {prefix} cells, {workers} workers: JSON diverged",
                engine.label()
            );
            assert_eq!(resumed.to_csv(), clean_csv);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_trailing_line_resumes_cleanly() {
    let dir = scratch("torn");
    let spec = spec();
    let path = dir.join("torn.jsonl");
    let base = RunOptions {
        checkpoint: Some(path.to_string_lossy().into_owned()),
        ..opts()
    };
    let clean = execute(&spec, &base).expect("checkpointed run");
    // Simulate a crash mid-append: chop the final line in half.
    let journal = std::fs::read_to_string(&path).expect("journal");
    let torn = &journal[..journal.len() - journal.lines().last().unwrap().len() / 2 - 1];
    std::fs::write(&path, torn).expect("torn journal");
    let resumed = execute(
        &spec,
        &RunOptions {
            resume: true,
            ..base
        },
    )
    .expect("resume over torn line");
    assert_eq!(resumed.to_json(), clean.to_json());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_missing_journal_starts_fresh() {
    let dir = scratch("fresh");
    let spec = spec();
    let path = dir.join("never_written.jsonl");
    let report = execute(
        &spec,
        &RunOptions {
            checkpoint: Some(path.to_string_lossy().into_owned()),
            resume: true,
            ..opts()
        },
    )
    .expect("fresh start");
    assert_eq!(report.to_json(), execute(&spec, &opts()).unwrap().to_json());
    assert!(path.exists(), "fresh journal was written");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_journal_is_rejected_with_the_diverging_knob() {
    let dir = scratch("mismatch");
    let spec = spec();
    let path = dir.join("dense.jsonl");
    let base = RunOptions {
        checkpoint: Some(path.to_string_lossy().into_owned()),
        engine: Some(EngineKind::Dense),
        ..opts()
    };
    execute(&spec, &base).expect("dense run");
    let err = execute(
        &spec,
        &RunOptions {
            engine: Some(EngineKind::Sparse),
            resume: true,
            ..base
        },
    )
    .expect_err("engine mismatch must fail");
    assert!(err.contains("--engine"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_is_grid_only() {
    // Any non-grid kind must refuse checkpointing up front.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("experiments");
    let non_grid = std::fs::read_dir(&dir)
        .expect("experiments/")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("toml"))
        .filter_map(|p| ExperimentSpec::load(p.to_str().unwrap()).ok())
        .find(|s| s.kind != RunKind::Grid)
        .expect("a non-grid spec is checked in");
    let err = execute(
        &non_grid,
        &RunOptions {
            checkpoint: Some("unused.jsonl".into()),
            ..opts()
        },
    )
    .expect_err("non-grid checkpoint must fail");
    assert!(err.contains("grid"), "{err}");
}

#[test]
fn injected_panic_is_isolated_to_its_cell() {
    let spec = spec();
    let faulty = RunOptions {
        faults: Some(Arc::new(FaultPlan::parse("panic@0").unwrap())),
        ..opts()
    };
    let report = execute(&spec, &faulty).expect("batch survives a panicking cell");
    assert_eq!(status_of(&report, 0), "error");
    assert_eq!(error_kind_of(&report, 0), Some("panic"));
    match report.records[0].get("error") {
        Some(Field::Str(msg)) => assert!(msg.contains("injected fault"), "{msg}"),
        other => panic!("no error detail: {other:?}"),
    }
    for i in 1..report.records.len() {
        assert_eq!(status_of(&report, i), "ok", "cell {i} must complete");
    }
    assert_eq!(report.summary.get("errors"), Some(&Field::UInt(1)));

    // The workspace replacement after the caught panic must not perturb
    // the surviving cells: they match a clean run exactly.
    let clean = execute(&spec, &opts()).expect("clean");
    for i in 1..report.records.len() {
        assert_eq!(
            report.records[i].get("success_rate"),
            clean.records[i].get("success_rate"),
            "cell {i} diverged after a sibling panic"
        );
    }
}

#[test]
fn transient_faults_are_retried_within_budget() {
    let spec = spec();
    // First attempt of cell 0 panics; the retry (attempt 2) is clean.
    let retried = execute(
        &spec,
        &RunOptions {
            faults: Some(Arc::new(FaultPlan::parse("panic@0:1").unwrap())),
            retries: 1,
            ..opts()
        },
    )
    .expect("retried run");
    assert_eq!(status_of(&retried, 0), "ok");
    assert_eq!(retried.records[0].get("retries"), Some(&Field::UInt(1)));
    assert_eq!(retried.summary.get("retries"), Some(&Field::UInt(1)));
    // The retried solve is seeded by cell coordinates, so it reproduces
    // the clean run's result exactly.
    let clean = execute(&spec, &opts()).expect("clean");
    assert_eq!(
        retried.records[0].get("success_rate"),
        clean.records[0].get("success_rate")
    );

    // Without budget the same fault is a final, structured error.
    let exhausted = execute(
        &spec,
        &RunOptions {
            faults: Some(Arc::new(FaultPlan::parse("panic@0:1").unwrap())),
            retries: 0,
            ..opts()
        },
    )
    .expect("unretried run");
    assert_eq!(status_of(&exhausted, 0), "error");
    assert_eq!(exhausted.records[0].get("retries"), Some(&Field::UInt(0)));

    // Deterministic failures never consume retries.
    let solver_fail = ExperimentSpec::parse_str(
        r#"
name = "solver-fail"
[grid]
problems = ["B1"]
solvers = ["cyclic"]
[config]
shots = 200
max_iters = 3
"#,
    )
    .unwrap();
    let report = execute(
        &solver_fail,
        &RunOptions {
            retries: 3,
            ..opts()
        },
    )
    .unwrap();
    assert_eq!(error_kind_of(&report, 0), Some("solver"));
    assert_eq!(report.records[0].get("retries"), Some(&Field::UInt(0)));
}

#[test]
fn injected_timeout_produces_a_structured_timeout_record() {
    let spec = spec();
    let report = execute(
        &spec,
        &RunOptions {
            faults: Some(Arc::new(FaultPlan::parse("timeout@1").unwrap())),
            ..opts()
        },
    )
    .expect("batch survives a timeout");
    assert_eq!(error_kind_of(&report, 1), Some("timeout"));
    for i in [0, 2, 3] {
        assert_eq!(status_of(&report, i), "ok", "cell {i}");
    }
}

#[test]
fn expired_cell_budget_times_every_cell_out_deterministically() {
    let spec = spec();
    let run = |workers: usize| {
        execute(
            &spec,
            &RunOptions {
                workers,
                cell_timeout: Some(Duration::from_nanos(1)),
                ..RunOptions::default()
            },
        )
        .expect("timed-out batch still reports")
    };
    let report = run(1);
    for i in 0..report.records.len() {
        assert_eq!(status_of(&report, i), "error", "cell {i}");
        assert_eq!(error_kind_of(&report, i), Some("timeout"), "cell {i}");
    }
    // The cooperative deadline trips at the first objective evaluation,
    // so even the degraded report is deterministic across worker counts.
    assert_eq!(report.to_json(), run(2).to_json());
}

#[test]
fn batched_cells_keep_panic_isolation_and_retry_semantics() {
    // The batched replay path runs inside the same catch_unwind /
    // retry / deadline envelope as serial cells: an injected panic in a
    // batched cell is isolated, a transient one is retried, and the
    // surviving cells land on the exact serial-run bytes.
    let spec = spec();
    let batched = |faults: Option<Arc<FaultPlan>>, retries: u32| RunOptions {
        engine: Some(EngineKind::Compact),
        batch: Some(8),
        faults,
        retries,
        ..opts()
    };
    let clean = execute(
        &spec,
        &RunOptions {
            engine: Some(EngineKind::Compact),
            ..opts()
        },
    )
    .expect("clean serial run");

    let report = execute(
        &spec,
        &batched(Some(Arc::new(FaultPlan::parse("panic@0").unwrap())), 0),
    )
    .expect("batched run survives a panicking cell");
    assert_eq!(status_of(&report, 0), "error");
    assert_eq!(error_kind_of(&report, 0), Some("panic"));
    for i in 1..report.records.len() {
        assert_eq!(
            status_of(&report, i),
            "ok",
            "batched cell {i} must complete"
        );
        assert_eq!(
            report.records[i].get("success_rate"),
            clean.records[i].get("success_rate"),
            "batched cell {i} diverged after a sibling panic"
        );
    }

    // A transient fault consumes one retry and then reproduces the
    // clean (serial, batch-free) result exactly.
    let retried = execute(
        &spec,
        &batched(Some(Arc::new(FaultPlan::parse("panic@0:1").unwrap())), 1),
    )
    .expect("retried batched run");
    assert_eq!(status_of(&retried, 0), "ok");
    assert_eq!(retried.records[0].get("retries"), Some(&Field::UInt(1)));
    assert_eq!(
        retried.records[0].get("success_rate"),
        clean.records[0].get("success_rate"),
        "retried batched cell must match the serial result"
    );

    // Without faults, the batched report is byte-identical to serial.
    let fault_free = execute(&spec, &batched(None, 0)).expect("fault-free batched run");
    assert_eq!(fault_free.to_json(), clean.to_json());
}

#[test]
fn batched_cells_honor_the_cell_timeout_deadline() {
    // An already-expired budget trips inside the batched objective's
    // chunk loop, producing the same degraded-but-deterministic report
    // as the serial path.
    let spec = spec();
    let run = |batch: Option<usize>| {
        execute(
            &spec,
            &RunOptions {
                engine: Some(EngineKind::Compact),
                batch,
                cell_timeout: Some(Duration::from_nanos(1)),
                ..opts()
            },
        )
        .expect("timed-out batched run still reports")
    };
    let batched = run(Some(8));
    for i in 0..batched.records.len() {
        assert_eq!(error_kind_of(&batched, i), Some("timeout"), "cell {i}");
    }
    assert_eq!(batched.to_json(), run(None).to_json());
}

#[test]
fn faulty_run_with_checkpoint_converges_on_clean_resume() {
    let dir = scratch("converge");
    let spec = spec();
    let path = dir.join("faulty.jsonl");
    let base = RunOptions {
        checkpoint: Some(path.to_string_lossy().into_owned()),
        ..opts()
    };
    let faulty = execute(
        &spec,
        &RunOptions {
            faults: Some(Arc::new(FaultPlan::parse("panic@2").unwrap())),
            ..base.clone()
        },
    )
    .expect("faulty run completes degraded");
    assert_eq!(status_of(&faulty, 2), "error");

    // Error records are not completions: a healthy resume re-executes
    // exactly the failed cell and lands on the clean report bytes.
    let resumed = execute(
        &spec,
        &RunOptions {
            resume: true,
            ..base
        },
    )
    .expect("clean resume");
    let clean = execute(&spec, &opts()).expect("clean");
    assert_eq!(resumed.to_json(), clean.to_json());
    assert_eq!(resumed.to_csv(), clean.to_csv());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delay_injection_perturbs_scheduling_without_changing_bytes() {
    let spec = spec();
    let clean = execute(&spec, &opts()).expect("clean");
    let delayed = execute(
        &spec,
        &RunOptions {
            workers: 4,
            faults: Some(Arc::new(FaultPlan::parse("delay@0:50").unwrap())),
            ..RunOptions::default()
        },
    )
    .expect("delayed run");
    assert_eq!(clean.to_json(), delayed.to_json());
}

/// A `Write` sink a test can read back after an in-process daemon exits.
#[derive(Clone, Default)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn serve_opts(state_dir: PathBuf, workers: usize, faults: &str) -> ServeOptions {
    ServeOptions {
        state_dir,
        run: RunOptions {
            workers,
            faults: Some(Arc::new(FaultPlan::parse(faults).unwrap())),
            ..RunOptions::default()
        },
        ..ServeOptions::default()
    }
}

/// Chaos-tested supervision: `kill@` panics escape the per-cell
/// isolation (by design — they fire *outside* the attempt envelope), so
/// each one costs a worker its workspaces and exercises the supervisor's
/// replace-and-requeue path. The healed report must be byte-identical to
/// a clean `choco-cli run`, with the restarts visible in `stats`.
#[test]
fn serve_supervisor_heals_killed_workers_byte_identically() {
    let spec = spec();
    let clean = execute(&spec, &opts()).expect("clean run").to_json();
    let serve_opts = serve_opts(
        scratch("serve_kill").join("state"),
        2,
        "kill@0:2,delay@1:50",
    );
    let (req_read, req_write) = std::io::pipe().expect("request pipe");
    let (event_read, event_write) = std::io::pipe().expect("event pipe");
    let stats_line = std::thread::scope(|scope| {
        scope.spawn(|| {
            serve(&serve_opts, BufReader::new(req_read), event_write).expect("serve session");
        });
        let mut requests = req_write;
        let mut events = BufReader::new(event_read).lines();
        let mut next = |kind: &str| -> String {
            let needle = format!("\"event\": \"{kind}\"");
            loop {
                let line = events
                    .next()
                    .expect("daemon closed its event stream")
                    .expect("event line");
                if line.contains(&needle) {
                    return line;
                }
            }
        };
        next("ready");
        let spec_file = serve_opts.state_dir.parent().unwrap().join("spec.toml");
        std::fs::write(&spec_file, SPEC).expect("write spec");
        requests
            .write_all(
                format!(
                    "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
                    spec_file.display()
                )
                .as_bytes(),
            )
            .expect("submit");
        let done = next("done");
        assert!(done.contains("\"errors\": 0"), "{done}");
        requests.write_all(b"{\"op\": \"stats\"}\n").expect("stats");
        let stats = next("stats");
        requests
            .write_all(b"{\"op\": \"shutdown\"}\n")
            .expect("shutdown");
        next("shutdown");
        drop(requests);
        stats
    });
    // Both scheduled kills consumed exactly one worker restart each.
    let restarts_at = stats_line
        .find("\"worker_restarts\": [")
        .expect("worker_restarts in stats");
    let restarts: u32 = stats_line[restarts_at..]
        .chars()
        .take_while(|c| *c != ']')
        .filter(|c| c.is_ascii_digit())
        .map(|c| c.to_digit(10).unwrap())
        .sum();
    assert_eq!(restarts, 2, "{stats_line}");
    let report =
        std::fs::read_to_string(serve_opts.state_dir.join("ft.json")).expect("healed serve report");
    assert_eq!(
        report, clean,
        "a chaos-killed serve run must heal to the clean report bytes"
    );
    // Requeues after a worker kill are not retries: the records must not
    // carry a retry count (that would break byte-identity, and it would
    // misreport what happened — the attempt never started).
    assert!(!report.contains("\"retries\": 1"), "kill must not retry");
}

/// A cell that kills its worker every time must not loop forever: the
/// supervisor stops requeueing at the crash limit and commits a
/// structured `panic` record, so the job still finishes with a report
/// and the daemon exits cleanly.
#[test]
fn repeatedly_killed_cell_becomes_a_structured_record() {
    let spec_text = SPEC;
    let serve_opts = serve_opts(scratch("serve_crashloop").join("state"), 1, "kill@0");
    let dir = serve_opts.state_dir.parent().unwrap().to_path_buf();
    let spec_file = dir.join("spec.toml");
    std::fs::write(&spec_file, spec_text).expect("write spec");
    let buf = SharedBuf::default();
    serve(
        &serve_opts,
        std::io::Cursor::new(format!(
            "{{\"op\": \"submit\", \"spec_path\": \"{}\"}}\n",
            spec_file.display()
        )),
        buf.clone(),
    )
    .expect("daemon must survive a crash-looping cell");
    let events = String::from_utf8(buf.0.lock().unwrap().clone()).expect("utf-8 events");
    let terminal: Vec<&str> = events
        .lines()
        .filter(|e| e.contains("\"event\": \"record\"") && e.contains("\"error_kind\": \"panic\""))
        .collect();
    assert_eq!(terminal.len(), 1, "{events}");
    assert!(
        terminal[0].contains("crashed its worker 3 times"),
        "{terminal:?}"
    );
    assert!(
        events.contains("\"event\": \"done\"") && events.contains("\"errors\": 1"),
        "{events}"
    );
    // The other three cells match a clean run: crash-looping one cell
    // never perturbs its siblings. The degraded report differs from the
    // clean one only in cell 0's error record and the summary, so each
    // surviving cell's success rate must appear verbatim.
    let report =
        std::fs::read_to_string(serve_opts.state_dir.join("ft.json")).expect("degraded report");
    let clean = execute(&spec(), &opts()).expect("clean");
    for i in 1..clean.records.len() {
        if let Some(Field::Float(rate)) = clean.records[i].get("success_rate") {
            assert!(
                report.contains(&format!("{rate}")),
                "cell {i} success_rate missing from degraded report"
            );
        }
    }
}

/// `kill@` directives are serve-pool chaos: the batch runner's cells run
/// under per-attempt isolation with no supervisor above it, so the
/// directive is inert there and the report is byte-identical to clean.
#[test]
fn kill_directives_are_inert_in_batch_runs() {
    let spec = spec();
    let clean = execute(&spec, &opts()).expect("clean");
    let with_kills = execute(
        &spec,
        &RunOptions {
            faults: Some(Arc::new(FaultPlan::parse("kill@0,kill@2:5").unwrap())),
            ..opts()
        },
    )
    .expect("kill directives must be inert in batch mode");
    assert_eq!(clean.to_json(), with_kills.to_json());
}
