//! Property tests for the state-vector fast path: random circuits of mixed
//! gates must agree between the strided/parallel kernels
//! ([`choco_q::qsim::StateVector`]) and the retained scan-and-mask oracle
//! ([`choco_q::qsim::oracle::ScalarStateVector`]) to 1e-10 fidelity, across
//! 1–12 qubits and 1–4 worker threads (with the parallel threshold forced
//! to 1 so threading engages even on small states).

use choco_q::mathkit::SplitMix64;
use choco_q::qsim::oracle::ScalarStateVector;
use choco_q::qsim::{Circuit, Gate, PhasePoly, SimConfig, SimWorkspace, StateVector, UBlock};
use proptest::prelude::*;
use std::sync::Arc;

/// Draws `k` distinct qubits of an `n`-qubit register.
fn distinct_qubits(rng: &mut SplitMix64, n: usize, k: usize) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut all);
    all.truncate(k);
    all
}

/// A random quadratic phase polynomial over `n` variables.
fn random_poly(rng: &mut SplitMix64, n: usize) -> PhasePoly {
    let mut poly = PhasePoly::new(n);
    poly.add_constant(rng.gen_range_f64(-1.0, 1.0));
    for i in 0..n {
        if rng.gen_bool(0.7) {
            poly.add_linear(i, rng.gen_range_f64(-2.0, 2.0));
        }
    }
    for _ in 0..n {
        let i = rng.gen_range(0, n as u64) as usize;
        let j = rng.gen_range(0, n as u64) as usize;
        if i != j {
            poly.add_quadratic(i, j, rng.gen_range_f64(-1.5, 1.5));
        }
    }
    poly
}

/// A random non-zero ternary vector over `n` entries (UBlock pattern).
fn random_u(rng: &mut SplitMix64, n: usize) -> Vec<i8> {
    loop {
        let u: Vec<i8> = (0..n)
            .map(|_| match rng.gen_range(0, 3) {
                0 => -1i8,
                1 => 0,
                _ => 1,
            })
            .collect();
        if u.iter().any(|&x| x != 0) {
            return u;
        }
    }
}

/// A random circuit exercising every kernel shape the engine dispatches
/// on: diagonal / anti-diagonal / real / general 1-qubit matrices,
/// controlled and multi-controlled flips and phases, swaps, XY mixers,
/// commute blocks, and diagonal polynomial evolutions.
fn random_circuit(seed: u64, n: usize, gates: usize) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(n);
    // A couple of Hadamards guarantee superposition so phase-only bugs
    // cannot hide in an unentangled basis state.
    for q in 0..n.min(3) {
        c.h(q);
    }
    for _ in 0..gates {
        let q = rng.gen_range(0, n as u64) as usize;
        let theta = rng.gen_range_f64(-2.0, 2.0);
        match rng.gen_range(0, if n >= 2 { 14 } else { 7 }) {
            0 => {
                c.h(q);
            }
            1 => {
                c.push(if rng.gen_bool(0.5) {
                    Gate::X(q)
                } else {
                    Gate::Y(q)
                });
            }
            2 => {
                c.push(if rng.gen_bool(0.5) {
                    Gate::S(q)
                } else {
                    Gate::Tdg(q)
                });
            }
            3 => {
                c.rx(q, theta);
            }
            4 => {
                c.ry(q, theta);
            }
            5 => {
                c.rz(q, theta);
            }
            6 => {
                let poly = random_poly(&mut rng, n);
                c.diag(Arc::new(poly), theta);
            }
            7 => {
                let qs = distinct_qubits(&mut rng, n, 2);
                c.cx(qs[0], qs[1]);
            }
            8 => {
                let qs = distinct_qubits(&mut rng, n, 2);
                c.cp(qs[0], qs[1], theta);
            }
            9 => {
                let qs = distinct_qubits(&mut rng, n, 2);
                c.push(Gate::Swap(qs[0], qs[1]));
            }
            10 => {
                let qs = distinct_qubits(&mut rng, n, 2);
                c.xy(qs[0], qs[1], theta);
            }
            11 => {
                c.ublock(UBlock::from_u_with_angle(&random_u(&mut rng, n), theta));
            }
            12 => {
                let k = 2 + rng.gen_range(0, (n - 1).min(4) as u64) as usize;
                let mut qs = distinct_qubits(&mut rng, n, k);
                let target = qs.pop().expect("k >= 2");
                c.mcx(qs, target);
            }
            _ => {
                let k = 2 + rng.gen_range(0, (n - 1).min(4) as u64) as usize;
                c.mcphase(distinct_qubits(&mut rng, n, k), theta);
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strided/parallel kernels match the scan-and-mask oracle on random
    /// mixed circuits at every thread count.
    #[test]
    fn fast_engine_matches_oracle(
        seed in any::<u64>(),
        n in 1usize..13,
        threads in 1usize..5,
    ) {
        let circuit = random_circuit(seed, n, 24);
        let oracle = ScalarStateVector::run(&circuit);
        let config = SimConfig {
            threads,
            parallel_threshold: 1,
            ..SimConfig::default()
        };
        let fast = StateVector::run_with(&circuit, config);
        let fidelity = oracle.fidelity_against(&fast);
        prop_assert!(
            (fidelity - 1.0).abs() < 1e-10,
            "seed={seed} n={n} threads={threads}: fidelity={fidelity}"
        );
        // Per-amplitude agreement is stronger than fidelity: catch global
        // phase drift too.
        for (a, b) in oracle.amplitudes().iter().zip(fast.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-10), "amplitude mismatch");
        }
    }

    /// The workspace path (cached diagonals, reused buffers) is equivalent
    /// to the oracle as well, including when the same workspace replays
    /// circuits of different widths.
    #[test]
    fn workspace_matches_oracle(
        seed in any::<u64>(),
        n in 2usize..10,
        threads in 1usize..5,
    ) {
        let config = SimConfig {
            threads,
            parallel_threshold: 1,
            ..SimConfig::default()
        };
        let mut ws = SimWorkspace::new(config);
        for round in 0..3u64 {
            let circuit = random_circuit(seed.wrapping_add(round), n, 16);
            let oracle = ScalarStateVector::run(&circuit);
            let state = ws.run(&circuit);
            let fidelity = oracle.fidelity_against_engine(state);
            prop_assert!(
                (fidelity - 1.0).abs() < 1e-10,
                "seed={seed} n={n} threads={threads} round={round}: fidelity={fidelity}"
            );
        }
        prop_assert!(ws.reallocations() == 1, "same width must not reallocate");
    }

    /// Unitarity: the fast path preserves the norm at any thread count.
    #[test]
    fn fast_engine_preserves_norm(
        seed in any::<u64>(),
        n in 1usize..13,
        threads in 1usize..5,
    ) {
        let circuit = random_circuit(seed, n, 24);
        let config = SimConfig {
            threads,
            parallel_threshold: 1,
            ..SimConfig::default()
        };
        let state = StateVector::run_with(&circuit, config);
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }
}
