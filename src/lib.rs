//! # choco-q
//!
//! Umbrella crate for the Rust reproduction of **Choco-Q: Commute
//! Hamiltonian-based QAOA for Constrained Binary Optimization** (HPCA 2025).
//!
//! This crate re-exports the workspace's sub-crates under stable module
//! names so downstream users need a single dependency:
//!
//! * [`mathkit`] — complex/integer linear algebra and PRNG foundations
//! * [`qsim`] — state-vector simulator, circuit IR, transpiler, noise
//! * [`model`] — constrained binary optimization model, metrics, solver API
//! * [`problems`] — FLP / GCP / KPP / exact-cover / knapsack generators
//! * [`optim`] — derivative-free classical optimizers
//! * [`solvers`] — baseline QAOA solvers (penalty, cyclic, HEA)
//! * [`core`] — the Choco-Q algorithm itself
//! * [`device`] — IBM device latency and noise models
//! * [`runner`] — the batched experiment runner behind `choco-cli run`
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete end-to-end run; the short
//! version:
//!
//! ```
//! use choco_q::prelude::*;
//!
//! // maximize x0 + 2 x1 + 3 x2  s.t.  x0 + x1 + x2 = 2
//! let problem = Problem::builder(3)
//!     .maximize()
//!     .linear(0, 1.0)
//!     .linear(1, 2.0)
//!     .linear(2, 3.0)
//!     .equality([(0, 1), (1, 1), (2, 1)], 2)
//!     .build()
//!     .expect("valid problem");
//!
//! let outcome = ChocoQSolver::new(ChocoQConfig::fast_test())
//!     .solve(&problem)
//!     .expect("solve");
//! let metrics = outcome.metrics(&problem).expect("metrics");
//! assert!((metrics.in_constraints_rate - 1.0).abs() < 1e-9);
//! ```

pub use choco_core as core;
pub use choco_device as device;
pub use choco_mathkit as mathkit;
pub use choco_model as model;
pub use choco_optim as optim;
pub use choco_problems as problems;
pub use choco_qsim as qsim;
pub use choco_runner as runner;
pub use choco_solvers as solvers;

/// Convenient glob-import surface with the most common types.
pub mod prelude {
    pub use choco_core::{ChocoQConfig, ChocoQSolver, CommuteDriver};
    pub use choco_device::{Device, LatencyModel};
    pub use choco_mathkit::{LinEq, LinSystem};
    pub use choco_model::{
        solve_exact, Metrics, Problem, ProblemBuilder, Sense, SolveOutcome, Solver, SolverError,
    };
    pub use choco_optim::OptimizerKind;
    pub use choco_problems::{
        cover, flp, gcp, instance, knapsack, kpp, BenchmarkSuite, ALL_CLASSES, EXTENDED_CLASSES,
    };
    pub use choco_qsim::{Circuit, Counts, Gate, NoiseModel, StateVector};
    pub use choco_runner::{ExperimentSpec, RunOptions, RunReport};
    pub use choco_solvers::{CyclicQaoaSolver, HeaSolver, PenaltyQaoaSolver, QaoaConfig};
}
