//! `choco-cli` — solve a constrained binary optimization problem from a
//! text file, or run a batched experiment spec.
//!
//! ```text
//! USAGE: choco-cli <file | -> [--solver choco|penalty|cyclic|hea]
//!                  [--layers N] [--shots N] [--iters N] [--eliminate K]
//!                  [--noise fez|osaka|sherbrooke] [--top N] [--seed N]
//!                  [--threads N] [--engine dense|sparse|compact|auto]
//!                  [--batch K] [--optimizer cobyla|nelder-mead|spsa]
//!                  [--restart-workers N] [--timeout SECS]
//!        choco-cli run <spec.toml> [--workers N] [--quick] [--out PATH|-]
//!                  [--csv PATH] [--sim-threads N] [--engine dense|sparse|compact|auto]
//!                  [--batch K] [--optimizer cobyla|nelder-mead|spsa]
//!                  [--restart-workers N] [--no-table] [--checkpoint PATH] [--resume]
//!                  [--cell-timeout SECS] [--retries N]
//!        choco-cli serve [--state-dir DIR] [--queue-cap N] [--socket PATH]
//!                  [--workers N] [--sim-threads N] [--engine dense|sparse|compact|auto]
//!                  [--batch K] [--optimizer cobyla|nelder-mead|spsa]
//!                  [--restart-workers N] [--cell-timeout SECS] [--retries N]
//!                  [--mem-budget BYTES[K|M|G]] [--gc-done] [--drain-timeout SECS]
//!
//! `--threads` sets the state-vector engine's worker-thread count
//! (0 = auto-detect; also settable via the `CHOCO_SIM_THREADS` env var).
//! `--optimizer` picks the classical optimizer of the variational loop
//! (COBYLA — the paper's choice — by default). `--restart-workers` fans
//! the Choco-Q multistart restarts out over a worker pool (0 = one per
//! core; results are byte-identical at any setting).
//! `--engine` picks the amplitude representation: `dense` (2^n strided
//! buffer), `sparse` (feasible-subspace sorted map — Choco-Q circuits
//! never leave the feasible subspace, so this scales to registers the
//! dense engine cannot allocate), `compact` (the feasible subspace is
//! enumerated once per circuit shape and every optimizer iteration
//! replays a precompiled gate plan over a rank-indexed flat array — the
//! fastest option for confined circuits), or `auto` (sparse with
//! automatic dense fallback at the occupancy threshold).
//! `--batch` sets the batched-replay width: the variational loop hands
//! K candidate angle sets at a time to the compact engine, which
//! evaluates them in one pass over the cached plan (bit-identical to K
//! serial replays; a pure performance knob, like `--engine`).
//! `--timeout` arms a cooperative wall-clock deadline on the solve: it
//! is checked at every objective evaluation and an expired solve fails
//! with a timeout error instead of running away. The `run` subcommand's
//! fault-tolerance flags (`--checkpoint`, `--resume`, `--cell-timeout`,
//! `--retries`, and the `CHOCO_FAULT_INJECT` test hook) are documented
//! in `docs/operations.md`.
//! ```
//!
//! The `run` subcommand executes an experiment spec (see
//! `choco_runner::ExperimentSpec` and the checked-in specs under
//! `experiments/`) and writes a deterministic JSON report; every paper
//! table and figure is reproduced this way (`docs/reproducing.md`).
//!
//! The single-problem input format (see `choco_model::parse_problem`):
//!
//! ```text
//! maximize x0 + 2 x1 + 3 x2 + x3
//! s.t. x0 - x2 = 0
//! s.t. x0 + x1 + x3 = 1
//! ```

use choco_q::prelude::*;
use std::io::Read;
use std::process::ExitCode;

struct Args {
    path: String,
    solver: String,
    layers: Option<usize>,
    shots: Option<u64>,
    iters: Option<usize>,
    eliminate: usize,
    noise: Option<Device>,
    top: usize,
    seed: u64,
    threads: Option<usize>,
    engine: Option<choco_q::qsim::EngineKind>,
    optimizer: Option<choco_q::optim::OptimizerKind>,
    restart_workers: usize,
    timeout: Option<std::time::Duration>,
    batch: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        solver: "choco".into(),
        layers: None,
        shots: None,
        iters: None,
        eliminate: 0,
        noise: None,
        top: 5,
        seed: 42,
        threads: None,
        engine: None,
        optimizer: None,
        restart_workers: 1,
        timeout: None,
        batch: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--solver" => args.solver = value("--solver")?,
            "--layers" => {
                args.layers = Some(
                    value("--layers")?
                        .parse()
                        .map_err(|e| format!("--layers: {e}"))?,
                )
            }
            "--shots" => {
                args.shots = Some(
                    value("--shots")?
                        .parse()
                        .map_err(|e| format!("--shots: {e}"))?,
                )
            }
            "--iters" => {
                args.iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                )
            }
            "--eliminate" => {
                args.eliminate = value("--eliminate")?
                    .parse()
                    .map_err(|e| format!("--eliminate: {e}"))?
            }
            "--top" => args.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--engine" => {
                args.engine = Some(
                    choco_q::qsim::EngineKind::parse(&value("--engine")?)
                        .map_err(|e| format!("--engine: {e}"))?,
                )
            }
            "--optimizer" => {
                args.optimizer = Some(
                    choco_q::optim::OptimizerKind::parse(&value("--optimizer")?)
                        .map_err(|e| format!("--optimizer: {e}"))?,
                )
            }
            "--restart-workers" => {
                args.restart_workers = value("--restart-workers")?
                    .parse()
                    .map_err(|e| format!("--restart-workers: {e}"))?
            }
            "--batch" => {
                let k: usize = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?;
                if k == 0 {
                    return Err("--batch: expected a width of at least 1 (1 = serial)".into());
                }
                args.batch = Some(k);
            }
            "--timeout" => {
                let secs: f64 = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!(
                        "--timeout: expected a positive number of seconds, got {secs}"
                    ));
                }
                args.timeout = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--noise" => {
                args.noise = Some(match value("--noise")?.as_str() {
                    "fez" => Device::Fez,
                    "osaka" => Device::Osaka,
                    "sherbrooke" => Device::Sherbrooke,
                    other => return Err(format!("unknown device `{other}`")),
                })
            }
            "--help" | "-h" => return Err("help".into()),
            other if args.path.is_empty() => args.path = other.to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if args.path.is_empty() {
        return Err("no input file (use `-` for stdin)".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    // `choco-cli run <spec>`: the batched experiment runner.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("run") {
        return match choco_q::runner::cli::run_command(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}\n{}", choco_q::runner::cli::RUN_USAGE);
                ExitCode::from(2)
            }
        };
    }

    // `choco-cli serve`: the solve-as-a-service daemon.
    if raw.first().map(String::as_str) == Some("serve") {
        return match choco_q::runner::cli::serve_command(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}\n{}", choco_q::runner::cli::SERVE_USAGE);
                ExitCode::from(2)
            }
        };
    }

    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: choco-cli <file | -> [--solver choco|penalty|cyclic|hea] \
                 [--layers N] [--shots N] [--iters N] [--eliminate K] \
                 [--noise fez|osaka|sherbrooke] [--top N] [--seed N] [--threads N] \
                 [--engine dense|sparse|compact|auto] [--batch K] \
                 [--optimizer cobyla|nelder-mead|spsa] \
                 [--restart-workers N] [--timeout SECS]\n\
                 usage: choco-cli run <spec.toml> [--workers N] [--quick] [--out PATH|-] \
                 [--csv PATH] [--sim-threads N] [--engine dense|sparse|compact|auto] \
                 [--batch K] [--optimizer cobyla|nelder-mead|spsa] [--restart-workers N] \
                 [--no-table] [--checkpoint PATH] [--resume] [--cell-timeout SECS] \
                 [--retries N]\n\
                 usage: choco-cli serve [--state-dir DIR] [--queue-cap N] [--socket PATH] \
                 [--workers N] [--sim-threads N] [--engine dense|sparse|compact|auto] \
                 [--batch K] [--optimizer cobyla|nelder-mead|spsa] [--restart-workers N] \
                 [--cell-timeout SECS] [--retries N] [--mem-budget BYTES[K|M|G]] \
                 [--gc-done] [--drain-timeout SECS]"
            );
            return ExitCode::from(2);
        }
    };

    let text = if args.path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: cannot read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&args.path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    };

    let problem = match choco_q::model::parse_problem(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{problem}");

    let noise = args.noise.map(|d| d.model().noise());
    let outcome = match args.solver.as_str() {
        "choco" => {
            let mut cfg = ChocoQConfig::default();
            if let Some(l) = args.layers {
                cfg.layers = l;
            }
            if let Some(s) = args.shots {
                cfg.shots = s;
            }
            if let Some(i) = args.iters {
                cfg.max_iters = i;
            }
            cfg.eliminate = args.eliminate;
            cfg.seed = args.seed;
            cfg.noise = noise;
            cfg.restart_workers = args.restart_workers;
            cfg.deadline = args.timeout.map(|t| std::time::Instant::now() + t);
            if let Some(o) = args.optimizer {
                cfg.optimizer = o;
            }
            if let Some(t) = args.threads {
                cfg.sim = choco_q::qsim::SimConfig::with_threads(t);
            }
            if let Some(engine) = args.engine {
                cfg.sim = cfg.sim.with_engine(engine);
            }
            if let Some(k) = args.batch {
                cfg.sim = cfg.sim.with_batch(k);
            }
            ChocoQSolver::new(cfg).solve(&problem)
        }
        name @ ("penalty" | "cyclic" | "hea") => {
            let mut cfg = QaoaConfig::default();
            if let Some(l) = args.layers {
                cfg.layers = l;
            }
            if let Some(s) = args.shots {
                cfg.shots = s;
            }
            if let Some(i) = args.iters {
                cfg.max_iters = i;
            }
            cfg.seed = args.seed;
            cfg.noise = noise;
            cfg.deadline = args.timeout.map(|t| std::time::Instant::now() + t);
            if let Some(o) = args.optimizer {
                cfg.optimizer = o;
            }
            if let Some(t) = args.threads {
                cfg.sim = choco_q::qsim::SimConfig::with_threads(t);
            }
            if let Some(engine) = args.engine {
                cfg.sim = cfg.sim.with_engine(engine);
            }
            if let Some(k) = args.batch {
                cfg.sim = cfg.sim.with_batch(k);
            }
            match name {
                "penalty" => PenaltyQaoaSolver::new(cfg).solve(&problem),
                "cyclic" => CyclicQaoaSolver::new(cfg).solve(&problem),
                _ => HeaSolver::new(cfg).solve(&problem),
            }
        }
        other => {
            eprintln!("error: unknown solver `{other}`");
            return ExitCode::from(2);
        }
    };

    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("solver error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match outcome.metrics(&problem) {
        Ok(m) => println!("{m}"),
        Err(e) => println!("(no exact reference: {e})"),
    }
    println!(
        "iterations: {}   circuit: {} qubits, logical depth {}{}",
        outcome.iterations,
        outcome.circuit.qubits,
        outcome.circuit.logical_depth,
        outcome
            .circuit
            .transpiled_depth
            .map(|d| format!(", transpiled depth {d}"))
            .unwrap_or_default()
    );
    println!("\ntop outcomes:");
    for (bits, count) in outcome.counts.sorted().into_iter().take(args.top) {
        println!(
            "  {:0width$b}  p={:.4}  f={}  {}",
            bits,
            count as f64 / outcome.counts.shots() as f64,
            problem.evaluate(bits),
            if problem.is_feasible(bits) {
                "feasible"
            } else {
                "INFEASIBLE"
            },
            width = problem.n_vars()
        );
    }
    ExitCode::SUCCESS
}
