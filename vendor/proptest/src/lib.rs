//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so the workspace wires this
//! path crate instead of the crates.io `proptest` (see the root manifest).
//! It implements the pieces the test-suite calls: the [`proptest!`] macro
//! (with `#![proptest_config(...)]`), range and tuple [`Strategy`] values,
//! [`Strategy::prop_map`], [`any`], and the `prop_assert*` macros. Failing
//! cases are re-generated deterministically from the test name and case
//! index; there is no shrinking — the failure report carries the case index
//! so a failure is reproducible by construction.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Deterministic per-case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(usize, u32, u64, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "anything goes" strategy, as in
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Configuration block accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property within a test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.message.fmt(f)
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` for every case of `config`, panicking with the case index on the
/// first failure. Used by the [`proptest!`] expansion — not called directly.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases as u64 {
        let seed = fnv1a(name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        if let Err(e) = f(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

/// The common import surface, as in `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }` blocks,
/// optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::run_proptest;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -1.5f64..1.5, z in any::<u64>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
            let _ = z;
        }

        /// prop_map transforms generated values.
        #[test]
        fn mapped_strategy(even in arb_even(), pair in (0u32..4, 0u32..4)) {
            prop_assert_eq!(even % 2, 0);
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            if even == u64::MAX { return Ok(()); }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        run_proptest(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
