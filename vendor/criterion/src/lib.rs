//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no network access, so the workspace wires this
//! path crate instead of the crates.io `criterion` (see the root manifest).
//! It supports `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `measurement_time`, `bench_function` /
//! `bench_with_input`, and `Bencher::iter`. Measurement is a pragmatic
//! warmup-then-sample loop reporting the median and minimum per-iteration
//! time; it has no statistical regression machinery, but the per-kernel
//! numbers are stable enough to track the perf trajectory in
//! `BENCH_simulation.json`.
//!
//! Set `CRITERION_FILTER=<substring>` to run only matching benchmark ids.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One measured benchmark: id plus per-iteration statistics.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark id (`group/bench`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            filter: std::env::var("CRITERION_FILTER").ok(),
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            criterion: self,
        }
    }

    /// Benchmarks a function outside of any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let sample_size = self.sample_size;
        let time = self.measurement_time;
        self.run_one(id.to_string(), sample_size, time, f);
    }

    /// All measurements recorded so far (used by headless JSON emitters).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup + calibration: find how many iterations fit one sample.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let budget = measurement_time.as_secs_f64() / sample_size.max(1) as f64;
        let iters_per_sample = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = samples_ns[samples_ns.len() / 2];
        let min_ns = samples_ns[0];
        println!(
            "{id:<48} time: [median {} / min {}] ({} samples × {} iters)",
            fmt_ns(median_ns),
            fmt_ns(min_ns),
            sample_size,
            iters_per_sample
        );
        self.measurements.push(Measurement {
            id,
            median_ns,
            min_ns,
            samples: sample_size,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the total measurement budget for each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks a function identified by `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        let (n, t) = (self.sample_size, self.measurement_time);
        self.criterion.run_one(full, n, t, f);
    }

    /// Benchmarks a function over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id.0, |b| f(b, input));
    }

    /// Ends the group (kept for API parity; drop does the work).
    pub fn finish(self) {}
}

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/<function>/<parameter>` style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the closure the calibrated number of times and records the total
    /// elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, as in the real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(20));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("direct", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn group_and_macros_measure() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            sample_size: 5,
            ..Criterion::default()
        };
        bench_demo(&mut c);
        // The filter env var may hide benches in CI; only assert shape when
        // measurements were recorded.
        if c.filter.is_none() {
            assert_eq!(c.measurements().len(), 2);
            assert_eq!(c.measurements()[0].id, "demo/8");
            assert!(c.measurements()[0].median_ns > 0.0);
        }
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn criterion_group_macro_compiles_and_runs() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            sample_size: 3,
            filter: Some("nothing-matches-this".into()),
            ..Criterion::default()
        };
        benches(&mut c);
        assert!(c.measurements().is_empty());
    }
}
