//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so instead of the crates.io
//! `rand` the workspace wires this path crate (see `[workspace.dependencies]`
//! in the root manifest). It implements exactly the surface the code calls:
//! [`Rng::gen`] for `f64`/`u64`/`bool`, [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically solid for
//! Monte-Carlo sampling, deterministic per seed, and dependency-free. The
//! stream differs from upstream `StdRng` (which is version-unstable anyway);
//! all in-repo consumers assert statistics, not exact draws.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws a uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo bias is negligible for the small spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range!(i32, i64, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The random-generator trait: the `rand`-compatible sampling surface.
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of a [`Standard`] type (`rng.gen::<f64>()` ∈ [0,1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (`rng.gen_range(0..3)`).
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator of the shim: SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_in_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let x = rng.gen_range(0..3);
            assert!((0..3).contains(&x));
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let r = &mut rng;
        let _ = draw(r);
        let _ = draw(r);
    }
}
